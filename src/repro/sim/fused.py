"""Fused single-pass multi-predictor simulation kernel.

The classic experiment decomposition runs one full trace replay per
(application × predictor variant) cell — O(variants × trace) work for
O(trace) information, since the paper's comparisons (Figs. 6–9,
Table 3) pit every predictor against the *same* idle-period stream.
This module evaluates all registered predictor specs in one streaming
pass per application:

1. :func:`repro.sim.engine.build_replay_tape` walks each execution's
   merged schedule **once**, producing the predictor-independent replay
   skeleton (gap boundaries, busy intervals, prebuilt per-process idle
   feedback, liveness, try-points, the shared busy-energy sum).  The
   tape exists because requests never stretch the timeline — spin-up
   latency is energy-only — so the busy/gap structure is identical
   under every predictor.
2. A per-variant *lane* replays the tape with only the per-predictor
   state: predictor instances and standing intents, the pending
   shutdown, prediction stats, and gap energy.  Three lane kinds:

   * a **generic local lane** mirroring
     :class:`~repro.core.global_predictor.GlobalShutdownPredictor` +
     engine + disk accounting expression for expression;
   * a **constant-intent lane** for timeout predictors
     (``PredictorSpec.constant_intent_delay``), which needs no
     per-process state at all: the global ready time is
     ``anchor_max + delay`` (IEEE-754 addition is monotonic, so this is
     bit-identical to maximizing per-slot ready times);
   * an **omniscient lane** for Base/Ideal gap policies.

**Bit-identity contract (DESIGN §10):** every lane reproduces the
classic path's results bit for bit — same boundary predicates, same
float expression shapes, same accumulation order.  The equivalence is
enforced by ``tests/test_fused.py`` and CI's ``fused-equivalence``
step.  Configurations the lanes do not model — structured tracing,
multistate disks — are rejected by :func:`fused_supported` and fall
back to the classic path.

Parallel decomposition changes from (application × variant) cells to
one fused cell per *application*; results merge through the same
deterministic cell-ordered fold, and the resilience executor
checkpoints fused cells under keys derived from the variant-set
fingerprint (:func:`repro.sim.artifact_cache.variant_set_fingerprint`),
so a changed variant list never resumes from stale entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.disk.energy import EnergyBreakdown, sum_breakdowns
from repro.errors import SimulationError
from repro.predictors.base import PredictorSource
from repro.predictors.registry import PredictorSpec
from repro.config import SimulationConfig
from repro.sim.engine import (
    ExecutionRunResult,
    ReplayTape,
    TAPE_FORK,
    TAPE_GAP,
    TAPE_SIMPLE,
    build_replay_tape,
)
from repro.sim.experiment import ApplicationResult, ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.sim.parallel import ExperimentCell, ProgressHook, execute_cells
from repro.units import EPSILON

_EPS = EPSILON
_PRIMARY = PredictorSource.PRIMARY


@dataclass(slots=True)
class FusedCellOutcome:
    """One application's fused pass: per-variant results, in lane order.

    Picklable, so fused cells travel through the fork pool, the
    checkpoint journal, and the artifact cache exactly like classic
    :class:`~repro.sim.experiment.ApplicationResult` cells.
    """

    application: str
    results: list[ApplicationResult]


def fused_supported(
    runner: ExperimentRunner, *, multistate: bool = False
) -> bool:
    """Whether the fused kernel models this run.

    The lanes implement the untraced three-state path only; structured
    tracing and the §7 multistate extension take the classic per-cell
    path (callers fall back silently — results are identical either
    way, fused is purely an execution strategy).
    """
    return not multistate and not runner.tracing


def replay_execution(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> ExecutionRunResult:
    """Replay one execution's shared tape under one predictor spec."""
    if spec.is_omniscient:
        return _replay_omniscient(tape, spec, config)
    if spec.constant_intent_delay is not None:
        return _replay_constant(tape, spec.constant_intent_delay, config)
    return _replay_local(tape, spec, config)


def _finish(
    tape: ReplayTape,
    config: SimulationConfig,
    stats: PredictionStats,
    energy: tuple[float, float, float, float],
    shutdown_count: int,
    delayed_requests: int,
    delay_seconds: float,
    irritating: int,
) -> ExecutionRunResult:
    idle_short, idle_long, power_cycle, standby = energy
    ledger = EnergyBreakdown(
        busy=tape.busy_energy,
        idle_short=idle_short,
        idle_long=idle_long,
        power_cycle=power_cycle,
        standby=standby,
    )
    return ExecutionRunResult(
        stats=stats,
        ledger=ledger,
        shutdowns=shutdown_count,
        disk_accesses=tape.n_accesses,
        delayed_requests=delayed_requests,
        delay_seconds=delay_seconds,
        irritating_delays=irritating,
    )


def _replay_local(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> ExecutionRunResult:
    """Generic lane: full per-process predictor state, matching
    GlobalShutdownPredictor + engine + SimulatedDisk bit for bit."""
    factory = spec.local_factory
    assert factory is not None
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven
    start = tape.start

    #: pid -> [ready_time, source, on_access, on_idle_end]; insertion
    #: and deletion order mirror the classic slot dict, so the decision
    #: scan tie-breaks identically.
    slots: dict[int, list] = {}
    for pid in tape.initial_pids:
        predictor = factory(pid)
        intent = predictor.initial_intent(start)
        delay = intent.delay
        slots[pid] = [
            None if delay is None else start + delay,
            intent.source,
            predictor.on_access,
            predictor.on_idle_end,
        ]

    pending_at: Optional[float] = None
    pending_source = _PRIMARY
    gaps = opportunities = 0
    hits_primary = hits_backup = misses_primary = misses_backup = 0
    unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.steps:
        op = step[0]
        if op == TAPE_SIMPLE:
            _, pid, access, feedback, busy_after, register, idle_full = step
            if register:
                predictor = factory(pid)
                intent = predictor.initial_intent(access.time)
                delay = intent.delay
                slot = [
                    None if delay is None else access.time + delay,
                    intent.source,
                    predictor.on_access,
                    predictor.on_idle_end,
                ]
                slots[pid] = slot
            else:
                slot = slots[pid]
            if feedback is not None:
                slot[3](feedback)
            intent = slot[2](access)
            delay = intent.delay
            slot[0] = None if delay is None else busy_after + delay
            slot[1] = intent.source
            idle_short += idle_full
        elif op == TAPE_GAP:
            (_, time, can_fire, record, window_start, busy_until,
             gap_length, idle_full, long_period, gap_end, busy_after,
             register, pid, feedback, access, _anchor_max) = step
            if can_fire and pending_at is None:
                # try_shutdown: the decision scan, inlined.
                blocked = False
                latest: Optional[float] = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        # No live processes: ready time is -inf,
                        # clamped to max(window_start, busy_until).
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            if pending_at is None:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
            else:
                shutdown_at = pending_at
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    opportunity = gap_length > breakeven
                    if opportunity:
                        opportunities += 1
                    if gap_length - (shutdown_at - busy_until) > (
                        breakeven + _EPS
                    ):
                        if pending_source is _PRIMARY:
                            hits_primary += 1
                        else:
                            hits_backup += 1
                    else:
                        if pending_source is _PRIMARY:
                            misses_primary += 1
                        else:
                            misses_backup += 1
                        if opportunity:
                            unsaved += 1
            if register:
                predictor = factory(pid)
                intent = predictor.initial_intent(time)
                delay = intent.delay
                slot = [
                    None if delay is None else time + delay,
                    intent.source,
                    predictor.on_access,
                    predictor.on_idle_end,
                ]
                slots[pid] = slot
            else:
                slot = slots[pid]
            if feedback is not None:
                slot[3](feedback)
            intent = slot[2](access)
            delay = intent.delay
            slot[0] = None if delay is None else busy_after + delay
            slot[1] = intent.source
            pending_at = None
        elif op == TAPE_FORK:
            _, time, can_fire, window_start, busy_until, pid, is_new, _am = (
                step
            )
            if can_fire and pending_at is None:
                blocked = False
                latest = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            if is_new:
                predictor = factory(pid)
                intent = predictor.initial_intent(time)
                delay = intent.delay
                slots[pid] = [
                    None if delay is None else time + delay,
                    intent.source,
                    predictor.on_access,
                    predictor.on_idle_end,
                ]
        else:  # TAPE_EXIT
            _, time, can_fire, window_start, busy_until, pid, feedback, _am = (
                step
            )
            if can_fire and pending_at is None:
                blocked = False
                latest = None
                source = _PRIMARY
                for slot in slots.values():
                    ready = slot[0]
                    if ready is None:
                        blocked = True
                        break
                    if latest is None or ready > latest:
                        latest = ready
                        source = slot[1]
                if not blocked:
                    if latest is None:
                        fire_at = (
                            window_start
                            if window_start > busy_until
                            else busy_until
                        )
                    else:
                        fire_at = max(window_start, latest, busy_until)
                    if fire_at < time - _EPS:
                        pending_at = fire_at
                        pending_source = source
            slot = slots.pop(pid)
            if feedback is not None:
                slot[3](feedback)

    # Trailing gap: final try-point, stats, then the finalize ledger.
    if tape.end_can_fire and pending_at is None:
        window_start = tape.final_window_start
        busy_until = tape.final_busy_until
        end = tape.end
        blocked = False
        latest = None
        source = _PRIMARY
        for slot in slots.values():
            ready = slot[0]
            if ready is None:
                blocked = True
                break
            if latest is None or ready > latest:
                latest = ready
                source = slot[1]
        if not blocked:
            if latest is None:
                fire_at = (
                    window_start if window_start > busy_until else busy_until
                )
            else:
                fire_at = max(window_start, latest, busy_until)
            if fire_at < end - _EPS:
                pending_at = fire_at
                pending_source = source
    busy_until = tape.final_busy_until
    if tape.end_record:
        gaps += 1
        idle_seconds += tape.trailing
        opportunity = tape.trailing > breakeven
        if opportunity:
            opportunities += 1
        if pending_at is not None:
            offset = pending_at - busy_until
            if tape.trailing - offset > breakeven + _EPS:
                if pending_source is _PRIMARY:
                    hits_primary += 1
                else:
                    hits_backup += 1
            else:
                if pending_source is _PRIMARY:
                    misses_primary += 1
                else:
                    misses_backup += 1
                if opportunity:
                    unsaved += 1
    if pending_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        shutdown_at = pending_at
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1
        # Trailing gap: no request follows, nobody waits for a spin-up.

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits_primary,
        hits_backup=hits_backup,
        misses_primary=misses_primary,
        misses_backup=misses_backup,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_constant(
    tape: ReplayTape, delay: float, config: SimulationConfig
) -> ExecutionRunResult:
    """Constant-intent (timeout) lane: no per-process state at all.

    Every live process's standing intent is ``delay`` after its anchor
    (creation, then last access completion) with PRIMARY attribution, so
    the global decision is always ``anchor_max + delay`` — precomputed
    on the tape — and nothing a process does can block the shutdown.
    """
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven

    pending_at: Optional[float] = None
    gaps = opportunities = 0
    hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.steps:
        op = step[0]
        if op == TAPE_SIMPLE:
            idle_short += step[6]
        elif op == TAPE_GAP:
            (_, time, can_fire, record, window_start, busy_until,
             gap_length, idle_full, long_period, gap_end, _busy_after,
             _register, _pid, _feedback, _access, anchor_max) = step
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at
            if pending_at is None:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
            else:
                shutdown_at = pending_at
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    opportunity = gap_length > breakeven
                    if opportunity:
                        opportunities += 1
                    if gap_length - (shutdown_at - busy_until) > (
                        breakeven + _EPS
                    ):
                        hits += 1
                    else:
                        misses += 1
                        if opportunity:
                            unsaved += 1
                pending_at = None
        elif op == TAPE_FORK:
            _, time, can_fire, window_start, busy_until, _p, _n, anchor_max = (
                step
            )
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at
        else:  # TAPE_EXIT
            _, time, can_fire, window_start, busy_until, _p, _f, anchor_max = (
                step
            )
            if can_fire and pending_at is None:
                if anchor_max is None:
                    fire_at = (
                        window_start
                        if window_start > busy_until
                        else busy_until
                    )
                else:
                    fire_at = max(
                        window_start, anchor_max + delay, busy_until
                    )
                if fire_at < time - _EPS:
                    pending_at = fire_at

    if tape.end_can_fire and pending_at is None:
        window_start = tape.final_window_start
        busy_until = tape.final_busy_until
        anchor_max = tape.final_anchor_max
        if anchor_max is None:
            fire_at = window_start if window_start > busy_until else busy_until
        else:
            fire_at = max(window_start, anchor_max + delay, busy_until)
        if fire_at < tape.end - _EPS:
            pending_at = fire_at
    busy_until = tape.final_busy_until
    if tape.end_record:
        gaps += 1
        idle_seconds += tape.trailing
        opportunity = tape.trailing > breakeven
        if opportunity:
            opportunities += 1
        if pending_at is not None:
            if tape.trailing - (pending_at - busy_until) > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if pending_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        shutdown_at = pending_at
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def _replay_omniscient(
    tape: ReplayTape, spec: PredictorSpec, config: SimulationConfig
) -> ExecutionRunResult:
    """Omniscient lane (Base / Ideal): gap-level policy over the tape."""
    policy = spec.omniscient
    assert policy is not None
    shutdown_offset = policy.shutdown_offset
    params = config.disk
    idle_power = params.idle_power
    standby_power = params.standby_power
    cycle_energy = params.cycle_energy
    transition_time = params.transition_time
    shutdown_time = params.shutdown_time
    spinup_time = params.spinup_time
    breakeven = config.breakeven

    gaps = opportunities = hits = misses = unsaved = 0
    idle_seconds = 0.0
    idle_short = idle_long = power_cycle = standby = 0.0
    shutdown_count = delayed_requests = irritating = 0
    delay_seconds = 0.0

    for step in tape.steps:
        op = step[0]
        if op == TAPE_SIMPLE:
            idle_short += step[6]
        elif op == TAPE_GAP:
            gap_length = step[6]
            record = step[3]
            idle_full = step[7]
            long_period = step[8]
            offset = shutdown_offset(gap_length) if record else None
            if offset is not None and offset < gap_length - _EPS:
                busy_until = step[5]
                gap_end = step[9]
                shutdown_at = busy_until + offset
                amount = idle_power * (shutdown_at - busy_until)
                if long_period:
                    idle_long += amount
                else:
                    idle_short += amount
                power_cycle += cycle_energy
                off_window = gap_end - shutdown_at
                residence = standby_power * max(
                    0.0, off_window - transition_time
                )
                standby += residence
                if long_period:
                    idle_long += residence
                else:
                    idle_short += residence
                shutdown_count += 1
                delayed_requests += 1
                delay_seconds += spinup_time + max(
                    0.0, (shutdown_at + shutdown_time) - gap_end
                )
                if off_window <= breakeven:
                    irritating += 1
                gaps += 1
                idle_seconds += gap_length
                opportunity = gap_length > breakeven
                if opportunity:
                    opportunities += 1
                if gap_length - offset > breakeven + _EPS:
                    hits += 1
                else:
                    misses += 1
                    if opportunity:
                        unsaved += 1
            else:
                if long_period:
                    idle_long += idle_full
                else:
                    idle_short += idle_full
                if record:
                    gaps += 1
                    idle_seconds += gap_length
                    if gap_length > breakeven:
                        opportunities += 1
        # Forks and exits are invisible to omniscient policies.

    shutdown_at = None
    if tape.end_record:
        trailing = tape.trailing
        offset = shutdown_offset(trailing)
        gaps += 1
        idle_seconds += trailing
        opportunity = trailing > breakeven
        if opportunity:
            opportunities += 1
        if offset is not None and offset < trailing - _EPS:
            shutdown_at = tape.final_busy_until + offset
            if trailing - offset > breakeven + _EPS:
                hits += 1
            else:
                misses += 1
                if opportunity:
                    unsaved += 1
    if shutdown_at is None:
        if tape.final_long:
            idle_long += tape.final_idle_full
        else:
            idle_short += tape.final_idle_full
    else:
        busy_until = tape.final_busy_until
        amount = idle_power * (shutdown_at - busy_until)
        if tape.final_long:
            idle_long += amount
        else:
            idle_short += amount
        power_cycle += cycle_energy
        off_window = tape.final_gap_end - shutdown_at
        residence = standby_power * max(0.0, off_window - transition_time)
        standby += residence
        if tape.final_long:
            idle_long += residence
        else:
            idle_short += residence
        shutdown_count += 1

    stats = PredictionStats(
        gaps=gaps,
        opportunities=opportunities,
        hits_primary=hits,
        misses_primary=misses,
        unsaved_in_opportunity=unsaved,
        idle_seconds=idle_seconds,
    )
    return _finish(
        tape, config, stats,
        (idle_short, idle_long, power_cycle, standby),
        shutdown_count, delayed_requests, delay_seconds, irritating,
    )


def run_fused_application(
    runner: ExperimentRunner,
    application: str,
    specs: Sequence[PredictorSpec],
) -> list[ApplicationResult]:
    """All ``specs`` over one application's trace history in one pass.

    Streams executions through
    :meth:`~repro.sim.experiment.ExperimentRunner.iter_filtered` (so
    store-backed traces stay memory-bounded), builds each execution's
    tape once, and advances every lane over it.  Per variant, the
    sequence of factory calls, feedback deliveries, and
    ``on_execution_end`` hooks is exactly the classic
    :meth:`~repro.sim.experiment.ExperimentRunner.run_global` sequence,
    so shared-table predictors (PCAP, LT) evolve identically.
    """
    if not fused_supported(runner):
        raise SimulationError(
            "fused execution does not support structured tracing; "
            "use the classic per-cell path"
        )
    config = runner.config
    count = len(specs)
    stats = [PredictionStats() for _ in range(count)]
    ledgers: list[list[EnergyBreakdown]] = [[] for _ in range(count)]
    accesses = [0] * count
    shutdowns = [0] * count
    peak_table = [0] * count
    delayed = [0] * count
    delay_seconds = [0.0] * count
    irritating = [0] * count
    executions = 0
    for execution, filtered in runner.iter_filtered(application):
        executions += 1
        tape = build_replay_tape(execution, filtered, config)
        for lane, spec in enumerate(specs):
            result = replay_execution(tape, spec, config)
            stats[lane].merge(result.stats)
            ledgers[lane].append(result.ledger)
            accesses[lane] += result.disk_accesses
            shutdowns[lane] += result.shutdowns
            delayed[lane] += result.delayed_requests
            delay_seconds[lane] += result.delay_seconds
            irritating[lane] += result.irritating_delays
            if spec.table_size is not None:
                peak_table[lane] = max(peak_table[lane], spec.table_size)
            spec.on_execution_end()
    return [
        ApplicationResult(
            application=application,
            predictor=spec.name,
            stats=stats[lane],
            ledger=sum_breakdowns(ledgers[lane]),
            executions=executions,
            total_disk_accesses=accesses[lane],
            shutdowns=shutdowns[lane],
            table_size=(
                peak_table[lane] if spec.table_size is not None else None
            ),
            delayed_requests=delayed[lane],
            delay_seconds=delay_seconds[lane],
            irritating_delays=irritating[lane],
        )
        for lane, spec in enumerate(specs)
    ]


def run_fused_cells(
    runner: ExperimentRunner,
    applications: Sequence[str],
    labels: Sequence[str],
    make_specs: Callable[[], list[PredictorSpec]],
    *,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    policy=None,
    checkpoint=None,
    use_cache: bool = True,
):
    """Fan one fused cell per application across the execution layer.

    ``labels`` name the variant lanes (they parameterize the artifact
    cache and checkpoint keys, so they must identify the variants the
    way classic cell labels do); ``make_specs`` builds one fresh spec
    per label — called inside each cell, because specs are stateful.
    ``use_cache=False`` bypasses the artifact cache (for variant sets
    built by opaque callables, whose labels do not pin down semantics).

    Returns ``(outcomes, ledger)`` where ``outcomes`` maps application
    → :class:`FusedCellOutcome` and ``ledger`` is the resilient
    executor's :class:`~repro.sim.resilience.RunLedger` (``None`` on
    the plain path).  With ``policy``/``checkpoint``, failed cells are
    missing from ``outcomes`` — callers inspect the ledger.
    """
    from repro.sim.artifact_cache import fused_key

    label_tuple = tuple(labels)
    config = runner.config
    cache = runner.artifact_cache if use_cache else None
    lane_label = f"fused[{len(label_tuple)}]"
    apps = list(applications)
    cells = [
        ExperimentCell(index=index, application=app, predictor=lane_label)
        for index, app in enumerate(apps)
    ]

    def run_cell(cell: ExperimentCell) -> FusedCellOutcome:
        application = cell.application
        key = None
        if cache is not None:
            key = fused_key(
                runner.fingerprint(application), config, label_tuple
            )
            hit, value = cache.get(key)
            if hit and isinstance(value, FusedCellOutcome):
                return value
        specs = make_specs()
        outcome = FusedCellOutcome(
            application=application,
            results=run_fused_application(runner, application, specs),
        )
        if key is not None:
            cache.put(key, outcome)
        return outcome

    # Warm the filter memo in the parent (forked workers inherit it
    # copy-on-write); streaming traces stay lazy, as in prewarm().
    for app in apps:
        if not getattr(runner.suite[app], "streaming", False):
            runner.filtered(app)

    if policy is not None or checkpoint is not None:
        from repro.sim.artifact_cache import variant_set_fingerprint
        from repro.sim.resilience import cell_key, run_cells

        keys = None
        provenance = None
        if checkpoint is not None:
            fingerprint = variant_set_fingerprint(label_tuple, config)
            keys = [
                cell_key(
                    runner.fingerprint(app), f"fused:{fingerprint}", config
                )
                for app in apps
            ]
            # Fused cells span the whole variant set, so a journal is
            # only resumable by a run over the identical lane list.
            provenance = {
                "fused": True,
                "mode": "global",
                "multistate": False,
                "variant_set": fingerprint,
            }
        ledger = run_cells(
            cells,
            run_cell,
            jobs=jobs,
            policy=policy,
            progress=progress,
            checkpoint=checkpoint,
            cell_keys=keys,
            provenance=provenance,
        )
        results = ledger.results
    else:
        ledger = None
        results = execute_cells(cells, run_cell, jobs=jobs, progress=progress)
    outcomes = {item.cell.application: item.result for item in results}
    return outcomes, ledger
