"""Property tests: gap segmentation partitions the timeline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.idle_periods import stream_gaps

times = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    max_size=40,
).map(sorted)


@given(times, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_gaps_are_disjoint_and_ordered(access_times, service):
    end = 1200.0
    gaps = stream_gaps(access_times, service, start_time=0.0, end_time=end)
    previous_end = -1.0
    for gap in gaps:
        assert gap.start >= previous_end
        assert gap.end > gap.start
        previous_end = gap.end


@given(times, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_busy_plus_idle_covers_the_window(access_times, service):
    """Total gap time + busy time equals the window length (within the
    serialization slack of overlapping requests)."""
    end = 2000.0
    gaps = stream_gaps(access_times, service, start_time=0.0, end_time=end)
    idle = sum(gap.length for gap in gaps)
    # Busy time: serialized services never overlap the gaps, so idle
    # cannot exceed the window minus the total service time demanded.
    assert idle <= end + 1e-6
    assert idle >= end - len(access_times) * service - len(access_times) * 1e-6 - service


@given(times)
def test_zero_service_time_gaps_sum_exactly(access_times):
    end = 2000.0
    gaps = stream_gaps(access_times, 0.0, start_time=0.0, end_time=end)
    idle = sum(gap.length for gap in gaps)
    assert idle == pytest.approx(end, abs=1e-6)
    # Gap boundaries lie on access times (times closer together than the
    # simulator epsilon merge, so check boundaries rather than times).
    accepted = sorted(set(access_times))
    for gap in gaps:
        if gap.start > 0.0:
            assert any(abs(gap.start - t) < 1e-6 for t in accepted)


@given(times, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_gaps_within_window(access_times, service):
    end = 1500.0
    gaps = stream_gaps(access_times, service, start_time=0.0, end_time=end)
    for gap in gaps:
        assert 0.0 <= gap.start <= end + 1e-9
        assert gap.end <= end + 1e-9
