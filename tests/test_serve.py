"""The online DPM service (repro.serve).

The contracts under test:

* the wire protocol round-trips frames through any chunking, and
  rejects hostile length prefixes before buffering their bodies;
* a shard journal is crash-safe — fsynced before decisions release,
  compaction keeps replay exact, a torn tail is truncated away — and
  dedups ``(client, client_seq)`` retries idempotently;
* a shard worker's decisions and final table state are bit-identical
  to an offline :meth:`ExperimentRunner.run_global` replay of the same
  feed, including after a cold restart that recovers from the journal;
* the daemon end to end: concurrent clients get decisions equal to the
  offline replay, a SIGKILLed shard worker is restarted with its state
  recovered, oversized executions are shed with a ``backpressure``
  NACK, and malformed frames are quarantined as ``*.corrupt``.
"""

from __future__ import annotations

import os
import signal
import socket
import struct

import pytest

from repro.config import SimulationConfig
from repro.errors import ServeError, ServeProtocolError
from repro.predictors.registry import make_spec
from repro.serve import protocol
from repro.serve.harness import (
    run_scenario,
    spawn_daemon,
    verify_equivalence,
)
from repro.serve.state import ShardJournal
from repro.serve.worker import (
    ShardWorker,
    _FiredSink,
    shard_of,
    table_snapshot,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import PredictionStats
from repro.traces.store import encode_event_rows
from repro.traces.trace import ApplicationTrace
from repro.workloads import build_suite


# -- protocol ---------------------------------------------------------

def test_frame_round_trip_survives_any_chunking():
    frames = [
        protocol.json_frame(protocol.HELLO, {"client": "c1"}),
        protocol.encode_frame(protocol.ROWS, bytes(range(66)) * 3),
        protocol.json_frame(protocol.EXEC_END, {}),
    ]
    wire = b"".join(frames)
    for chunk in (1, 3, 7, len(wire)):
        reader = protocol.FrameReader()
        seen = []
        for start in range(0, len(wire), chunk):
            reader.feed(wire[start:start + chunk])
            seen.extend(reader.frames())
        assert [f[0] for f in seen] == [
            protocol.HELLO, protocol.ROWS, protocol.EXEC_END,
        ]
        assert seen[1][1] == bytes(range(66)) * 3
        assert len(reader) == 0


def test_frame_reader_rejects_hostile_length_before_buffering():
    reader = protocol.FrameReader()
    reader.feed(struct.pack("!I", protocol.MAX_FRAME + 1))
    with pytest.raises(ServeProtocolError):
        list(reader.frames())
    reader = protocol.FrameReader()
    reader.feed(struct.pack("!I", 0))
    with pytest.raises(ServeProtocolError):
        list(reader.frames())


def test_encode_frame_rejects_oversized_payload():
    with pytest.raises(ServeProtocolError):
        protocol.encode_frame(protocol.ROWS, b"x" * protocol.MAX_FRAME)


def test_read_frame_distinguishes_clean_eof_from_torn_frame():
    a, b = socket.socketpair()
    with a, b:
        a.sendall(protocol.json_frame(protocol.BYE, {}))
        a.close()
        assert protocol.read_frame(b) == (protocol.BYE, b"{}")
        assert protocol.read_frame(b) is None  # clean EOF
    a, b = socket.socketpair()
    with a, b:
        frame = protocol.json_frame(protocol.DECISION, {"seq": 1})
        a.sendall(frame[:len(frame) - 3])  # cut mid-body
        a.close()
        with pytest.raises(ServeProtocolError):
            protocol.read_frame(b)


def test_shard_mapping_is_stable_and_in_range():
    for shards in (1, 2, 5):
        for app in ("mozilla", "xemacs", "mplayer"):
            shard = shard_of(app, shards)
            assert 0 <= shard < shards
            assert shard == shard_of(app, shards)


# -- journal ----------------------------------------------------------

def _execution(suite, application, index=0):
    return suite[application].executions[index]


@pytest.fixture(scope="module")
def tiny_suite():
    return build_suite(scale=0.05, applications=("mozilla", "xemacs"))


def test_journal_records_dedup_and_compact_replay(tmp_path, tiny_suite):
    execution = _execution(tiny_suite, "mozilla")
    rows = encode_event_rows(execution.events)
    with ShardJournal(tmp_path / "shard-0", checkpoint_every=100,
                      provenance={"predictor": "PCAP"}) as journal:
        journal.record_execution(
            client="c1", client_seq=0, application="mozilla",
            execution_index=execution.execution_index,
            initial_pids=sorted(execution.initial_pids),
            rows=rows, decision={"seq": 0, "shutdowns": 3},
        )
        assert journal.decisions[("c1", 0)] == {"seq": 0, "shutdowns": 3}
        assert journal.compact() is not None
        # Rows now live in a store segment; replay must still be exact.
        replayed = [exec_ for _, exec_ in journal.replay()]
    assert len(replayed) == 1
    assert replayed[0].events == list(execution.events)
    assert replayed[0].initial_pids == execution.initial_pids
    # A fresh load sees the compacted journal and the same decision.
    with ShardJournal(tmp_path / "shard-0") as reloaded:
        assert reloaded.decisions[("c1", 0)] == {"seq": 0, "shutdowns": 3}
        assert [e.events for _, e in reloaded.replay()] == \
            [list(execution.events)]


def test_journal_truncates_torn_tail_on_load(tmp_path, tiny_suite):
    execution = _execution(tiny_suite, "mozilla")
    shard_dir = tmp_path / "shard-0"
    with ShardJournal(shard_dir, checkpoint_every=100) as journal:
        journal.record_execution(
            client="c1", client_seq=0, application="mozilla",
            execution_index=execution.execution_index,
            initial_pids=sorted(execution.initial_pids),
            rows=encode_event_rows(execution.events),
            decision={"seq": 0},
        )
    path = shard_dir / "journal.jsonl"
    with open(path, "ab") as stream:
        stream.write(b'{"type": "execution", "app_seq')  # torn append
    with ShardJournal(shard_dir) as journal:
        assert journal.torn_bytes > 0
        assert len(journal.records) == 1
        assert journal.decisions[("c1", 0)] == {"seq": 0}
    # The torn bytes are gone from disk, not just skipped.
    with ShardJournal(shard_dir) as journal:
        assert journal.torn_bytes == 0


def test_journal_rejects_mid_stream_corruption(tmp_path):
    shard_dir = tmp_path / "shard-0"
    shard_dir.mkdir()
    (shard_dir / "journal.jsonl").write_text(
        'not json at all\n{"type": "provenance", "format": 1}\n'
    )
    with pytest.raises(ServeError, match="corrupt"):
        ShardJournal(shard_dir)


def test_journal_rejects_provenance_drift(tmp_path):
    with ShardJournal(tmp_path / "s", provenance={"predictor": "PCAP"}):
        pass
    with pytest.raises(ServeError, match="different configuration"):
        ShardJournal(tmp_path / "s", provenance={"predictor": "TP"})


# -- worker -----------------------------------------------------------

def _feed_worker(worker, suite, application, client="c1"):
    decisions = []
    for execution in suite[application].executions:
        decisions.append(worker.process(
            client=client,
            client_seq=len(decisions),
            application=application,
            execution_index=execution.execution_index,
            initial_pids=sorted(execution.initial_pids),
            rows=encode_event_rows(execution.events),
        ))
    return decisions


def test_worker_matches_offline_run_global_bit_identically(
        tmp_path, tiny_suite):
    config = SimulationConfig()
    worker = ShardWorker(0, tmp_path, predictor="PCAP", config=config)
    decisions = _feed_worker(worker, tiny_suite, "mozilla")

    runner = ExperimentRunner(
        {"mozilla": ApplicationTrace(
            "mozilla", list(tiny_suite["mozilla"].executions))},
        config=config,
    )
    sink = _FiredSink()
    spec = make_spec("PCAP", config)
    offline = runner.run_global("mozilla", spec, tracer=sink)

    online_stats = PredictionStats.merged([
        PredictionStats.from_dict(d["stats"]) for d in decisions
    ])
    assert online_stats == offline.stats
    sums = {"busy": 0.0, "idle_short": 0.0, "idle_long": 0.0,
            "power_cycle": 0.0}
    for decision in decisions:
        for name in sums:
            sums[name] += decision["energy"][name]
    assert (sums["busy"] + sums["idle_short"] + sums["idle_long"]
            + sums["power_cycle"]) == offline.ledger.total
    assert sum(d["shutdowns"] for d in decisions) == offline.shutdowns
    assert [f for d in decisions for f in d["fired"]] == sink.fired
    assert worker.tables()["mozilla"] == table_snapshot(spec)


def test_worker_dedups_retries_and_recovers_from_journal(
        tmp_path, tiny_suite):
    worker = ShardWorker(0, tmp_path, predictor="PCAP",
                         checkpoint_every=1)
    decisions = _feed_worker(worker, tiny_suite, "xemacs")
    # A retry of an already-journaled seq must not re-run the engine:
    # the cached decision comes back, and table state does not move.
    before = worker.tables()
    execution = _execution(tiny_suite, "xemacs")
    replay = worker.process(
        client="c1", client_seq=0, application="xemacs",
        execution_index=execution.execution_index,
        initial_pids=sorted(execution.initial_pids),
        rows=encode_event_rows(execution.events),
    )
    assert replay == decisions[0]
    assert worker.tables() == before
    worker.close()

    # A cold restart replays the journal (compacted to segments by
    # checkpoint_every=1) into bit-identical tables and counters.
    recovered = ShardWorker(0, tmp_path, predictor="PCAP",
                            checkpoint_every=1)
    assert recovered.recovered == len(decisions)
    assert recovered.tables() == worker.tables()
    assert recovered.stats() == worker.stats()
    recovered.close()


# -- daemon end to end ------------------------------------------------

@pytest.mark.slow
def test_daemon_decisions_match_offline_replay(tmp_path):
    scenario = run_scenario(
        socket_path=str(tmp_path / "serve.sock"),
        state_dir=str(tmp_path / "state"),
        clients=3, scale=0.05,
        applications=("mozilla", "xemacs"),
        stall_timeout=10.0,
    )
    assert scenario.client_errors == []
    assert scenario.exit_code == 0
    assert verify_equivalence(scenario) == []


@pytest.mark.slow
def test_daemon_survives_sigkilled_shard_worker(tmp_path):
    scenario = run_scenario(
        socket_path=str(tmp_path / "serve.sock"),
        state_dir=str(tmp_path / "state"),
        clients=2, scale=0.05,
        applications=("mozilla", "xemacs"),
        stall_timeout=10.0,
        kill_worker_after=1,
    )
    assert scenario.client_errors == []
    assert scenario.killed_pid is not None
    assert scenario.exit_code == 0
    kinds = {i.get("kind") for i in scenario.health.get("incidents", [])}
    assert "worker-restart" in kinds
    assert verify_equivalence(scenario) == []


def _raw_conn(socket_path, client):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    sock.connect(socket_path)
    sock.sendall(protocol.json_frame(protocol.HELLO, {"client": client}))
    ftype, payload = protocol.read_frame(sock)
    assert ftype == protocol.HELLO_OK
    assert protocol.parse_json(payload)["row_bytes"] == 66
    return sock


@pytest.mark.slow
def test_daemon_backpressure_and_quarantine(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    state_dir = str(tmp_path / "state")
    daemon = spawn_daemon(
        socket_path=socket_path, state_dir=state_dir, shards=1,
        extra_args=("--max-pending-bytes", "660"),
    )
    try:
        # An execution assembling more than max-pending-bytes of rows
        # is shed with a typed backpressure NACK.
        with _raw_conn(socket_path, "greedy") as sock:
            sock.sendall(protocol.json_frame(protocol.EXEC_BEGIN, {
                "application": "mozilla", "execution": 0, "seq": 0,
                "initial_pids": [100],
            }))
            sock.sendall(protocol.encode_frame(protocol.ROWS,
                                               b"\x00" * 66 * 11))
            ftype, payload = protocol.read_frame(sock)
            assert ftype == protocol.NACK
            assert protocol.parse_json(payload)["code"] == \
                protocol.NACK_BACKPRESSURE

        # A row payload off the 66-byte grid is NACKed malformed and
        # the bytes land in quarantine as *.corrupt.
        with _raw_conn(socket_path, "mangled") as sock:
            sock.sendall(protocol.json_frame(protocol.EXEC_BEGIN, {
                "application": "mozilla", "execution": 0, "seq": 0,
                "initial_pids": [100],
            }))
            sock.sendall(protocol.encode_frame(protocol.ROWS, b"\x00" * 65))
            sock.sendall(protocol.json_frame(protocol.EXEC_END, {}))
            ftype, payload = protocol.read_frame(sock)
            assert ftype == protocol.NACK
            assert protocol.parse_json(payload)["code"] == \
                protocol.NACK_MALFORMED
        corrupt = [
            name for name in os.listdir(os.path.join(state_dir,
                                                     "quarantine"))
            if name.endswith(".corrupt")
        ]
        assert any(name.startswith("mangled-") for name in corrupt)
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait(timeout=60.0)
    assert daemon.returncode == 0
