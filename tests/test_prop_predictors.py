"""Property tests: predictor protocol and engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.sim.engine import evaluate_local_stream
from tests.helpers import access

CONFIG = SimulationConfig()

# Ascending access times with varied spacing (sub-window to long).
gap_lists = st.lists(
    st.floats(min_value=0.01, max_value=60.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)

pc_lists = st.lists(
    st.sampled_from([0x10, 0x20, 0x30, 0x40]), min_size=1, max_size=30
)

local_predictors = st.sampled_from(
    ["TP", "LT", "PCAP", "PCAPh", "PCAPf", "PCAPfh", "EXP", "AT", "PCAPc"]
)


def build_stream(gaps, pcs):
    t = 0.0
    stream = []
    for i, gap in enumerate(gaps):
        t += gap
        stream.append(access(t, pc=pcs[i % len(pcs)]))
    return stream, t + 30.0


@settings(max_examples=60, deadline=None)
@given(gap_lists, pc_lists, local_predictors)
def test_stats_are_internally_consistent(gaps, pcs, name):
    stream, end = build_stream(gaps, pcs)
    spec = make_spec(name, CONFIG)
    stats = evaluate_local_stream(
        stream, spec.local_factory(1), CONFIG, start_time=0.0, end_time=end
    )
    assert stats.hits + stats.misses == stats.shutdowns
    assert 0 <= stats.opportunities <= stats.gaps
    assert stats.not_predicted >= 0
    assert (
        stats.hits + stats.unsaved_in_opportunity + stats.not_predicted
        == stats.opportunities
    )


@settings(max_examples=60, deadline=None)
@given(gap_lists, pc_lists, local_predictors)
def test_hits_never_exceed_opportunities(gaps, pcs, name):
    stream, end = build_stream(gaps, pcs)
    spec = make_spec(name, CONFIG)
    stats = evaluate_local_stream(
        stream, spec.local_factory(1), CONFIG, start_time=0.0, end_time=end
    )
    assert stats.hits <= stats.opportunities


@settings(max_examples=40, deadline=None)
@given(gap_lists, pc_lists)
def test_pcap_table_only_grows_signatures_seen_before_long_gaps(gaps, pcs):
    stream, end = build_stream(gaps, pcs)
    spec = make_spec("PCAP", CONFIG)
    evaluate_local_stream(
        stream, spec.local_factory(1), CONFIG, start_time=0.0, end_time=end
    )
    long_gap_count = sum(1 for g in gaps if g > CONFIG.breakeven) + 1
    assert spec.table_size <= long_gap_count


@settings(max_examples=40, deadline=None)
@given(gap_lists, pc_lists)
def test_identical_streams_give_identical_stats(gaps, pcs):
    stream, end = build_stream(gaps, pcs)
    results = []
    for _ in range(2):
        spec = make_spec("PCAPfh", CONFIG)
        stats = evaluate_local_stream(
            stream, spec.local_factory(1), CONFIG,
            start_time=0.0, end_time=end,
        )
        results.append(
            (stats.hits_primary, stats.hits_backup, stats.misses,
             stats.opportunities)
        )
    assert results[0] == results[1]


@settings(max_examples=40, deadline=None)
@given(gap_lists, pc_lists)
def test_tp_never_fires_below_its_timeout(gaps, pcs):
    stream, end = build_stream(gaps, pcs)
    spec = make_spec("TP", CONFIG)
    stats = evaluate_local_stream(
        stream, spec.local_factory(1), CONFIG, start_time=0.0, end_time=end
    )
    fireable = sum(1 for g in gaps if g > CONFIG.timeout) + 1  # + trailing
    assert stats.shutdowns <= fireable
