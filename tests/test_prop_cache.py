"""Property tests: page-cache behaviour."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.page_cache import CacheConfig, PageCache

blocks = st.integers(min_value=0, max_value=30)
ops = st.lists(
    st.tuples(st.sampled_from(["read", "write"]), blocks),
    max_size=150,
)


def make_cache(capacity_blocks=8):
    return PageCache(
        CacheConfig(capacity_bytes=capacity_blocks * 4096, block_size=4096)
    )


@given(ops, st.integers(min_value=1, max_value=12))
def test_residency_never_exceeds_capacity(operations, capacity):
    cache = make_cache(capacity)
    t = 0.0
    for op, block in operations:
        t += 0.1
        if op == "read":
            cache.read(t, inode=1, blocks=[block])
        else:
            cache.write(t, inode=1, blocks=[block], pid=1)
        assert cache.resident_block_count <= capacity
        assert cache.dirty_block_count <= cache.resident_block_count


@given(ops)
def test_immediate_reread_always_hits(operations):
    cache = make_cache()
    t = 0.0
    for op, block in operations:
        t += 0.1
        if op == "read":
            cache.read(t, 1, [block])
        else:
            cache.write(t, 1, [block], pid=1)
        missed, _ = cache.read(t, 1, [block])
        assert missed == []


@given(ops)
def test_stats_account_every_read(operations):
    cache = make_cache()
    t = 0.0
    reads = 0
    for op, block in operations:
        t += 0.1
        if op == "read":
            cache.read(t, 1, [block])
            reads += 1
        else:
            cache.write(t, 1, [block], pid=1)
    assert cache.stats.read_hits + cache.stats.read_misses == reads


@given(ops)
def test_flush_now_leaves_nothing_dirty_and_is_complete(operations):
    cache = make_cache()
    t = 0.0
    written = set()
    flushed_or_evicted = set()
    for op, block in operations:
        t += 0.1
        if op == "read":
            _, forced = cache.read(t, 1, [block])
        else:
            forced = cache.write(t, 1, [block], pid=1)
            written.add(block)
        flushed_or_evicted.update(w.block for w in forced)
    final = cache.flush_now(t + 1.0)
    flushed_or_evicted.update(w.block for w in final)
    assert cache.dirty_block_count == 0
    # Every written block was either flushed, evicted-dirty, or is now
    # clean in cache after an eviction+rewrite cycle; at minimum, any
    # still-resident written block must be clean.
    assert written >= flushed_or_evicted & written
