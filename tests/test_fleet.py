"""The device-batched fleet engine (repro.sim.fleet).

The load-bearing contract is **per-device bit-identity** in sharded
mode: every device of a batched fleet must report exactly the result
of an independent single-device ``run_global`` of its application —
the fleet engine is an execution strategy, never a different
simulation.  On top of that: deterministic aggregates (serial ==
pooled == crash-retried), shared-table semantics (first-seen device
order), streaming store-backed populations, the artifact-cache
round trip, and the checkpoint/resume path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultPlan, FaultSpec
from repro.predictors.registry import make_spec, tp_spec
from repro.sim.columnar import (
    DEVICE_COUNT_FIELDS,
    DEVICE_FLOAT_FIELDS,
    DeviceStateColumns,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.fleet import (
    DeviceSpec,
    FleetResult,
    fleet_sweep,
    replicate_devices,
    run_fleet,
)
from repro.sim.fused import run_fused_application
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.resilience import ResiliencePolicy

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="pool path needs the fork start method"
)

APPS = ("mozilla", "xemacs")
PREDICTORS = ("PCAP", "TP", "Base")


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def runner(small_suite):
    return ExperimentRunner(small_suite, SimulationConfig())


@pytest.fixture(scope="module")
def devices():
    return replicate_devices(APPS, 7)


def columns_equal(a: DeviceStateColumns, b: DeviceStateColumns) -> bool:
    """Exact (bitwise) equality of two device-state column sets."""
    if a.n_devices != b.n_devices:
        return False
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in DEVICE_FLOAT_FIELDS + DEVICE_COUNT_FIELDS
    )


def fleets_equal(a: FleetResult, b: FleetResult) -> bool:
    """Exact equality of two fleet runs, lane by lane, row by row."""
    if a.fingerprint != b.fingerprint or a.predictors != b.predictors:
        return False
    return all(
        columns_equal(a.lane(name).columns, b.lane(name).columns)
        for name in a.predictors
    )


# ---------------------------------------------------------------------------
# Per-device bit-identity (the core contract)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("predictor", PREDICTORS)
def test_device_results_identical_to_standalone(runner, devices, predictor):
    fleet = run_fleet(runner, devices, (predictor,))
    lane = fleet.lane(predictor)
    assert lane.devices == len(devices)
    for index, device in enumerate(devices):
        solo = runner.run_global(device.application, predictor)
        assert lane.device_result(index) == solo


def test_replicas_of_one_app_are_bit_identical_rows(runner):
    fleet = run_fleet(runner, replicate_devices(("mozilla",), 5), ("PCAP",))
    lane = fleet.lane("PCAP")
    first = lane.device_result(0)
    for index in range(1, 5):
        assert lane.device_result(index) == first


def test_aggregates_match_hand_sums(runner, devices):
    fleet = run_fleet(runner, devices, ("PCAP",))
    lane = fleet.lane("PCAP")
    rows = [lane.device_result(i) for i in range(len(devices))]
    assert lane.total_energy == pytest.approx(
        sum(r.energy for r in rows), rel=1e-12
    )
    agg = lane.aggregate_stats()
    assert agg.gaps == sum(r.stats.gaps for r in rows)
    assert agg.opportunities == sum(r.stats.opportunities for r in rows)
    assert int(lane.columns.shutdowns.sum()) == sum(
        r.shutdowns for r in rows
    )
    assert float(lane.columns.delay_seconds.sum()) == pytest.approx(
        sum(r.delay_seconds for r in rows), rel=1e-12
    )


# ---------------------------------------------------------------------------
# Determinism across execution strategies
# ---------------------------------------------------------------------------


@needs_fork
def test_serial_matches_pooled(runner, devices):
    serial = run_fleet(runner, devices, PREDICTORS, jobs=1)
    pooled = run_fleet(runner, devices, PREDICTORS, jobs=2)
    assert fleets_equal(serial, pooled)


@needs_fork
def test_crash_retried_run_bit_identical(runner, devices):
    """Satellite contract: a worker crash mid-fleet, retried by the
    resilient executor, must not perturb a single aggregate bit."""
    clean = run_fleet(runner, devices, ("PCAP", "Base"))
    plan = FaultPlan([FaultSpec(site="worker.crash", cell=0, attempts=1)])
    policy = ResiliencePolicy(
        max_attempts=3, base_delay=0.001, max_delay=0.01
    )
    with faults.injected(plan):
        survived = run_fleet(
            runner, devices, ("PCAP", "Base"),
            jobs=2, resilience=policy,
        )
    assert survived.ledger is not None
    assert [e.kind for e in survived.ledger.retries] == ["crash"]
    assert fleets_equal(clean, survived)


def test_checkpoint_resume_restores_cells(runner, devices, tmp_path):
    path = tmp_path / "fleet.ckpt"
    first = run_fleet(runner, devices, ("PCAP",), checkpoint=path,
                      use_cache=False)
    second = run_fleet(runner, devices, ("PCAP",), checkpoint=path,
                       use_cache=False)
    assert second.ledger is not None
    assert second.ledger.resumed == len(APPS)  # one fused cell per app
    assert fleets_equal(first, second)


def test_store_backed_fleet_matches_in_memory(runner, devices, tmp_path):
    from repro.workloads import pack_generated

    store = pack_generated(tmp_path / "fleet-store", scale=0.25,
                           applications=APPS, chunk_rows=512)
    store_runner = ExperimentRunner(store.suite(), SimulationConfig())
    in_memory = run_fleet(runner, devices, ("PCAP",))
    streamed = run_fleet(store_runner, devices, ("PCAP",))
    # Same workload, so the per-device rows agree exactly; the
    # fingerprints differ only if the store manifest changes provenance.
    assert columns_equal(
        in_memory.lane("PCAP").columns, streamed.lane("PCAP").columns
    )


def test_artifact_cache_roundtrip(devices, small_suite, tmp_path):
    from repro.sim.artifact_cache import ArtifactCache

    cache = ArtifactCache(tmp_path / "artifacts")
    cached_runner = ExperimentRunner(
        small_suite, SimulationConfig(), artifact_cache=cache
    )
    cold = run_fleet(cached_runner, devices, ("PCAP", "Base"))
    warm = run_fleet(cached_runner, devices, ("PCAP", "Base"))
    assert fleets_equal(cold, warm)
    plain_runner = ExperimentRunner(small_suite, SimulationConfig())
    plain = run_fleet(plain_runner, devices, ("PCAP", "Base"))
    assert fleets_equal(cold, plain)


# ---------------------------------------------------------------------------
# Shared prediction tables
# ---------------------------------------------------------------------------


def test_shared_tables_replay_in_first_seen_order(runner, devices):
    fleet = run_fleet(runner, devices, ("PCAP",), tables="shared")
    lane = fleet.lane("PCAP")
    # Reference: one persistent spec walked over the applications in
    # first-seen device order (mozilla first — device 0).
    specs = [make_spec("PCAP", SimulationConfig())]
    expected = {}
    seen = []
    for device in devices:
        if device.application not in seen:
            seen.append(device.application)
    for app in seen:
        expected[app] = run_fused_application(runner, app, specs)[0]
    for app in seen:
        assert lane.per_application[app] == expected[app]


def test_shared_and_sharded_fingerprints_cache_separately(
    devices, small_suite, tmp_path
):
    from repro.sim.artifact_cache import ArtifactCache

    cache = ArtifactCache(tmp_path / "artifacts")
    cached_runner = ExperimentRunner(
        small_suite, SimulationConfig(), artifact_cache=cache
    )
    shared = run_fleet(cached_runner, devices, ("PCAP",), tables="shared")
    sharded = run_fleet(cached_runner, devices, ("PCAP",))
    # Same population → same fleet fingerprint; the cache keys differ
    # by table scope, so the shared run must not serve sharded rows.
    assert shared.fingerprint == sharded.fingerprint
    again = run_fleet(cached_runner, devices, ("PCAP",), tables="shared")
    assert fleets_equal(shared, again)


# ---------------------------------------------------------------------------
# Population plumbing and validation
# ---------------------------------------------------------------------------


def test_replicate_devices_round_robin():
    population = replicate_devices(("a", "b"), 5, prefix="node")
    assert [d.application for d in population] == ["a", "b", "a", "b", "a"]
    assert population[0].device_id == "node-0000"
    assert population[4].device_id == "node-0004"
    with pytest.raises(ConfigurationError):
        replicate_devices((), 3)
    with pytest.raises(ConfigurationError):
        replicate_devices(("a",), -1)


def test_integer_population_round_robins_the_suite(runner):
    fleet = run_fleet(runner, 5, ("Base",))
    lane = fleet.lane("Base")
    assert lane.applications == [
        runner.applications[i % len(runner.applications)] for i in range(5)
    ]


def test_unknown_application_rejected(runner):
    with pytest.raises(ConfigurationError, match="not in the runner"):
        run_fleet(runner, [DeviceSpec("d0", "no-such-app")], ("TP",))


def test_bad_table_scope_rejected(runner, devices):
    with pytest.raises(ConfigurationError, match="table scope"):
        run_fleet(runner, devices, ("TP",), tables="global")


def test_traced_runner_rejected(small_suite, devices):
    traced = ExperimentRunner(
        small_suite, SimulationConfig(), tracing=True
    )
    with pytest.raises(SimulationError, match="structured tracing"):
        run_fleet(traced, devices, ("TP",))


def test_empty_fleet_is_empty_not_an_error(runner):
    fleet = run_fleet(runner, [], ("TP",))
    lane = fleet.lane("TP")
    assert lane.devices == 0
    assert lane.total_energy == 0.0
    assert lane.slowdown_percentiles() == {50.0: 0.0, 90.0: 0.0, 99.0: 0.0}


def test_fingerprint_tracks_population_and_lanes(runner, devices):
    base = run_fleet(runner, devices, ("TP",)).fingerprint
    # Rotating by one changes the application sequence (a reversal
    # would not: a 7-device round-robin over 2 apps is a palindrome).
    rotated = devices[1:] + devices[:1]
    reordered = run_fleet(runner, rotated, ("TP",)).fingerprint
    more_devices = run_fleet(runner, devices + devices[:1],
                             ("TP",)).fingerprint
    other_lanes = run_fleet(runner, devices, ("TP", "Base")).fingerprint
    assert len({base, reordered, more_devices, other_lanes}) == 4


# ---------------------------------------------------------------------------
# Fleet-level metrics and sweeps
# ---------------------------------------------------------------------------


def test_slowdown_percentiles_ordered(runner, devices):
    lane = run_fleet(runner, devices, ("PCAP",)).lane("PCAP")
    spread = lane.slowdown_percentiles((50.0, 90.0, 99.0))
    assert list(spread) == [50.0, 90.0, 99.0]
    assert spread[50.0] <= spread[90.0] <= spread[99.0]
    per_device = lane.columns.delay_per_access()
    assert spread[99.0] <= float(per_device.max())


def test_render_is_deterministic(runner, devices):
    first = run_fleet(runner, devices, PREDICTORS).render()
    second = run_fleet(runner, devices, PREDICTORS).render()
    assert first == second
    assert "Base" in first and "vs Base" in first


def test_fleet_sweep_matches_single_device_sweep(runner):
    points = fleet_sweep(
        runner,
        replicate_devices(("mozilla",), 3),
        [2.0, 30.0],
        make_spec_fn=lambda t, cfg: tp_spec(cfg, timeout=t),
    )
    assert len(points) == 2
    solo = [
        run_fused_application(
            runner, "mozilla",
            [tp_spec(SimulationConfig(), timeout=t)],
        )[0]
        for t in (2.0, 30.0)
    ]
    # 3 identical devices: fleet totals are exactly 3x the single run.
    for point, reference in zip(points, solo):
        assert point.total_energy == pytest.approx(
            3 * reference.energy, rel=1e-12
        )
        assert point.shutdowns == 3 * reference.shutdowns
    # Short timeouts shut down more often than long ones on this trace.
    assert points[0].shutdowns >= points[1].shutdowns


def test_runner_methods_forward(small_suite):
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    fleet = runner.run_fleet(replicate_devices(APPS, 4), ("Base",))
    assert fleet.lane("Base").devices == 4
    points = runner.fleet_sweep(
        replicate_devices(("mozilla",), 2), [2.0],
        make_spec_fn=lambda t, cfg: tp_spec(cfg, timeout=t),
    )
    assert len(points) == 1
