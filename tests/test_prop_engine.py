"""Metamorphic properties of the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.filter import FilterResult
from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.sim.engine import evaluate_local_stream, run_global_execution
from repro.traces.events import ExitEvent
from repro.traces.trace import ExecutionTrace
from tests.helpers import access, io_event

CONFIG = SimulationConfig()

gap_lists = st.lists(
    st.floats(min_value=0.05, max_value=60.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=20,
)
pc_choices = st.lists(
    st.sampled_from([0x10, 0x20, 0x30]), min_size=1, max_size=20
)
predictor_names = st.sampled_from(["TP", "LT", "PCAP", "PCAPfh", "AT"])


def _single_process_case(gaps, pcs):
    """Matching (execution, filtered, stream, end) for one process."""
    t = 0.0
    events = []
    stream = []
    for i, gap in enumerate(gaps):
        t += gap
        pc = pcs[i % len(pcs)]
        events.append(io_event(t, pid=100, pc=pc, block_start=i * 8))
        stream.append(access(t, pid=100, pc=pc))
    end = t + 30.0
    events.append(ExitEvent(time=end, pid=100))
    execution = ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100})
    )
    filtered = FilterResult(
        application="app", execution_index=0, accesses=stream
    )
    return execution, filtered, stream, end


@settings(max_examples=50, deadline=None)
@given(gap_lists, pc_choices, predictor_names)
def test_single_process_global_equals_local(gaps, pcs, name):
    """For a single-process execution, the global run's accuracy equals
    the per-process local evaluation (the AND over one process is that
    process)."""
    execution, filtered, stream, end = _single_process_case(gaps, pcs)

    local_spec = make_spec(name, CONFIG)
    local = evaluate_local_stream(
        stream, local_spec.local_factory(100), CONFIG,
        start_time=execution.start_time, end_time=end,
    )

    global_spec = make_spec(name, CONFIG)
    global_result = run_global_execution(
        execution, filtered, global_spec, CONFIG
    )
    gs = global_result.stats

    # The local stream starts at the first access (leading gap zero);
    # the global gap structure matches otherwise.
    assert gs.opportunities == local.opportunities
    assert gs.hits_primary == local.hits_primary
    assert gs.hits_backup == local.hits_backup
    assert gs.misses == local.misses


@settings(max_examples=30, deadline=None)
@given(gap_lists, pc_choices)
def test_energy_never_below_standby_floor(gaps, pcs):
    """No policy can consume less than the standby-power floor over the
    active window plus the busy energy."""
    execution, filtered, stream, end = _single_process_case(gaps, pcs)
    result = run_global_execution(
        execution, filtered, make_spec("Ideal", CONFIG), CONFIG
    )
    duration = end - execution.start_time
    floor = CONFIG.disk.standby_power * duration
    assert result.ledger.total >= floor - 1e-6


@settings(max_examples=30, deadline=None)
@given(gap_lists, pc_choices)
def test_oracle_energy_is_a_lower_bound(gaps, pcs):
    execution, filtered, stream, end = _single_process_case(gaps, pcs)
    oracle = run_global_execution(
        execution, filtered, make_spec("Ideal", CONFIG), CONFIG
    ).ledger.total
    for name in ("Base", "TP", "PCAP"):
        execution, filtered, stream, end = _single_process_case(gaps, pcs)
        other = run_global_execution(
            execution, filtered, make_spec(name, CONFIG), CONFIG
        ).ledger.total
        assert oracle <= other + 1e-6


@settings(max_examples=30, deadline=None)
@given(gap_lists, pc_choices)
def test_multistate_never_costs_energy(gaps, pcs):
    execution, filtered, stream, end = _single_process_case(gaps, pcs)
    plain = run_global_execution(
        execution, filtered, make_spec("PCAP", CONFIG), CONFIG
    ).ledger.total
    execution, filtered, stream, end = _single_process_case(gaps, pcs)
    multi = run_global_execution(
        execution, filtered, make_spec("PCAP", CONFIG), CONFIG,
        multistate=True,
    ).ledger.total
    assert multi <= plain + 1e-6
