"""Path signatures (§3.2): additive 32-bit encoding and the restart rule."""

from repro.core.signature import (
    SIGNATURE_MASK,
    PathSignature,
    fold_pc,
    signature_of_path,
)


def test_fold_is_addition_mod_2_32():
    assert fold_pc(0, 0x10) == 0x10
    assert fold_pc(SIGNATURE_MASK, 1) == 0
    assert fold_pc(0xFFFFFFF0, 0x20) == 0x10


def test_signature_of_path_matches_paper_example():
    """Figure 3/4: path {PC1, PC2, PC1} encodes as PC1+PC2+PC1."""
    pc1, pc2 = 0x1000, 0x2000
    assert signature_of_path([pc1, pc2, pc1]) == pc1 + pc2 + pc1


def test_permutation_aliasing_is_inherent():
    """The paper notes {PC1,PC2,PC1} and {PC1,PC1,PC2} alias — the cheap
    encoding is order-insensitive by design."""
    a = signature_of_path([1, 2, 1])
    b = signature_of_path([1, 1, 2])
    assert a == b


def test_register_first_observation_overwrites():
    register = PathSignature()
    assert register.observe(0x5000) == 0x5000


def test_register_accumulates_until_restart():
    register = PathSignature()
    register.observe(0x10)
    register.observe(0x20)
    assert register.value == 0x30
    register.restart()
    assert register.observe(0x40) == 0x40  # overwritten, not added


def test_register_path_open_flag():
    register = PathSignature()
    assert not register.path_open
    register.observe(1)
    assert register.path_open
    register.restart()
    assert not register.path_open


def test_register_reset_clears_value():
    register = PathSignature()
    register.observe(123)
    register.reset()
    assert register.value == 0
    assert not register.path_open


def test_register_wraps_at_32_bits():
    register = PathSignature()
    register.observe(0xFFFFFFFF)
    register.observe(0x2)
    assert register.value == 0x1
