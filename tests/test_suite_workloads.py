"""The six-application suite: structure, determinism, Table-1 shapes.

These run at a small scale; the full-scale Table 1 comparison lives in
the benchmarks.
"""

import pytest

from repro.workloads import (
    APPLICATIONS,
    application_spec,
    build_application,
    build_suite,
)
from repro.workloads.rng import stable_pc, stable_seed


def test_suite_lists_paper_applications():
    assert APPLICATIONS == (
        "mozilla", "writer", "impress", "xemacs", "nedit", "mplayer",
    )


def test_unknown_application_rejected():
    with pytest.raises(KeyError):
        application_spec("netscape")


def test_spec_execution_counts_match_table1():
    expected = {
        "mozilla": 49, "writer": 33, "impress": 19,
        "xemacs": 37, "nedit": 29, "mplayer": 31,
    }
    for name, count in expected.items():
        assert application_spec(name).executions == count


def test_suite_scaling(small_suite):
    for name, trace in small_suite.items():
        full_count = application_spec(name).executions
        assert 1 <= len(trace.executions) <= full_count


def test_suite_memoized(small_suite):
    again = build_suite(scale=0.25)
    assert again[APPLICATIONS[0]] is small_suite[APPLICATIONS[0]]


def test_suite_subset_selection():
    subset = build_suite(scale=0.15, applications=("nedit",))
    assert list(subset) == ["nedit"]


def test_all_executions_validate(small_suite):
    for trace in small_suite.values():
        for execution in trace.executions:
            execution.validate()


def test_multiprocess_structure(small_suite):
    multi = {"mozilla", "writer", "impress", "mplayer"}
    for name in multi:
        execution = small_suite[name].executions[0]
        assert len(execution.pids) > 1, name
    nedit = small_suite["nedit"].executions[0]
    assert len(nedit.pids) == 1  # "the only application with single process"


def test_generation_is_deterministic():
    a = build_application("nedit", scale=0.1)
    b = build_application("nedit", scale=0.1)
    assert a.executions[0].events == b.executions[0].events


def test_io_volume_ordering(small_suite):
    """Table 1 shape: impress > writer > xemacs >> nedit.

    mplayer is excluded here: its I/O volume scales with chapter count,
    which collapses at the small test scale (the full-scale ordering —
    mplayer largest — is asserted by the Table 1 benchmark).
    """
    per_exec = {
        name: trace.total_io_count / len(trace.executions)
        for name, trace in small_suite.items()
    }
    assert per_exec["impress"] > per_exec["writer"]
    assert per_exec["writer"] > per_exec["xemacs"]
    assert per_exec["nedit"] < per_exec["xemacs"]


def test_nedit_has_one_idle_period_per_execution(small_suite, config):
    from repro.cache import filter_execution
    from repro.sim import stream_gaps

    trace = small_suite["nedit"]
    for execution in trace.executions:
        filtered = filter_execution(execution, config.cache)
        gaps = stream_gaps(
            [a.time for a in filtered.accesses],
            config.service_time,
            start_time=execution.start_time,
            end_time=execution.end_time,
        )
        long_gaps = [g for g in gaps if g.length > config.breakeven]
        assert len(long_gaps) == 1


def test_stable_pc_properties():
    assert stable_pc("app", "f") == stable_pc("app", "f")
    assert stable_pc("app", "f") != stable_pc("app", "g")
    assert stable_pc("app", "f") % 16 == 0
    assert 0 < stable_pc("app", "f") < 2**32


def test_stable_seed_order_sensitivity():
    assert stable_seed("a", "b") != stable_seed("b", "a")
    assert stable_seed("a", 1) == stable_seed("a", 1)
