"""Property tests: path-signature algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.signature import (
    SIGNATURE_MASK,
    PathSignature,
    fold_pc,
    signature_of_path,
)

pcs = st.integers(min_value=0, max_value=SIGNATURE_MASK)
paths = st.lists(pcs, max_size=50)


@given(paths)
def test_signature_always_32_bit(path):
    assert 0 <= signature_of_path(path) <= SIGNATURE_MASK


@given(paths)
def test_signature_is_order_insensitive(path):
    """Additive encoding: any permutation aliases (the paper's noted
    property of the cheap encoding)."""
    assert signature_of_path(path) == signature_of_path(
        list(reversed(path))
    )


@given(paths, paths)
def test_signature_is_additive_over_concatenation(a, b):
    combined = signature_of_path(a + b)
    assert combined == fold_pc(
        signature_of_path(a), signature_of_path(b)
    )


@given(paths)
def test_signature_matches_modular_sum(path):
    assert signature_of_path(path) == sum(path) & SIGNATURE_MASK


@given(paths.filter(lambda p: len(p) >= 1))
def test_register_equals_functional_encoding(path):
    register = PathSignature()
    for pc in path:
        register.observe(pc)
    assert register.value == signature_of_path(path)


@given(paths.filter(lambda p: len(p) >= 1), paths.filter(lambda p: len(p) >= 1))
def test_restart_forgets_previous_path(before, after):
    register = PathSignature()
    for pc in before:
        register.observe(pc)
    register.restart()
    for pc in after:
        register.observe(pc)
    assert register.value == signature_of_path(after)
