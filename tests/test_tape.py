"""Columnar replay tape (repro.sim.columnar.ColumnarTape).

The tape is the shared per-execution skeleton every fused lane replays;
its contract has three legs, all exercised here at the edges:

* the vectorized builder and the sequential (historical-loop) builder
  produce byte-identical columns and scalars for every shape the
  vectorized path accepts, and replaying either tape matches the
  classic engine bit for bit — including empty executions, zero-gap
  (all ``TAPE_SIMPLE``) streams, and single-access processes;
* store-backed builds are identical across degenerate chunk sizes
  (1–3 rows) and never decode event objects — the page-cache filter
  and the tape builder both run off the memmapped columns; and
* the tape is a value: it pickles without its memos and refuses to
  replay a generic lane before an access stream is bound.
"""

from __future__ import annotations

import math
import pickle
import tracemalloc

import pytest

from repro.cache.filter import filter_execution
from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.sim.columnar import (
    _TAPE_ARRAY_FIELDS,
    _TAPE_SCALAR_FIELDS,
    TAPE_SIMPLE,
    ColumnarTape,
)
from repro.sim.engine import (
    _build_tape_sequential,
    _build_tape_vectorized,
    _VectorUnsupported,
    build_replay_tape,
    run_global_execution,
)
from repro.sim.fused import replay_execution
from repro.traces.store import StoreWriter, TraceStore, pack_trace
from repro.traces.trace import ExecutionTrace
from repro.workloads import build_application_trace, application_spec

from .helpers import single_process_execution, two_process_execution

#: One lane of each kind: constant-intent, omniscient ×2, generic.
LANES = ("TP", "Base", "Ideal", "PCAP")


def build_both(execution, config):
    """(vectorized tape or None, sequential tape) for one execution."""
    filtered = filter_execution(execution)
    try:
        vector = _build_tape_vectorized(execution, filtered, config)
    except _VectorUnsupported:
        vector = None
    return vector, _build_tape_sequential(execution, filtered, config), filtered


def assert_tapes_bitwise_equal(a: ColumnarTape, b: ColumnarTape) -> None:
    """Every column byte-identical, every scalar equal (NaN-aware)."""
    for name in _TAPE_ARRAY_FIELDS:
        col_a, col_b = getattr(a, name), getattr(b, name)
        assert col_a.dtype == col_b.dtype, name
        assert col_a.tobytes() == col_b.tobytes(), name
    for name in _TAPE_SCALAR_FIELDS:
        val_a, val_b = getattr(a, name), getattr(b, name)
        if (
            isinstance(val_a, float)
            and isinstance(val_b, float)
            and math.isnan(val_a)
        ):
            assert math.isnan(val_b), name
        else:
            assert val_a == val_b, name


def assert_replay_matches_classic(execution, filtered, tape, config):
    """Tape replay (vector and loop) equals the classic engine per lane."""
    for name in LANES:
        classic = run_global_execution(
            execution, filtered, make_spec(name, config), config
        )
        for vectorized in (True, False):
            replayed = replay_execution(
                tape, make_spec(name, config), config, vectorized=vectorized
            )
            assert replayed == classic, (name, vectorized)


class TestBuilderEquivalence:
    def test_single_process_trace(self):
        config = SimulationConfig()
        execution = single_process_execution(
            [(1.0, 0x10), (9.0, 0x20), (40.0, 0x30), (41.0, 0x10)],
            end_time=90.0,
        )
        vector, sequential, filtered = build_both(execution, config)
        assert vector is not None
        assert_tapes_bitwise_equal(vector, sequential)
        vector.bind_accesses(filtered.accesses)
        assert_replay_matches_classic(execution, filtered, vector, config)

    def test_fork_exit_trace(self):
        config = SimulationConfig()
        execution = two_process_execution(
            [(1.0, 0x10), (30.0, 0x20), (75.0, 0x30)],
            [(2.0, 0x40), (31.0, 0x50)],
            end_time=100.0,
        )
        vector, sequential, filtered = build_both(execution, config)
        assert vector is not None
        assert_tapes_bitwise_equal(vector, sequential)
        vector.bind_accesses(filtered.accesses)
        assert_replay_matches_classic(execution, filtered, vector, config)

    def test_generated_workloads(self):
        """Every execution of two representative generated apps."""
        config = SimulationConfig()
        for name in ("nedit", "mozilla"):
            trace = build_application_trace(
                application_spec(name), scale=0.25
            )
            vectorized_builds = 0
            for execution in trace:
                vector, sequential, filtered = build_both(execution, config)
                if vector is not None:
                    vectorized_builds += 1
                    assert_tapes_bitwise_equal(vector, sequential)
                sequential.bind_accesses(filtered.accesses)
                assert_replay_matches_classic(
                    execution, filtered, sequential, config
                )
            # The fast path must actually engage on realistic traces.
            assert vectorized_builds > 0


class TestEdgeCases:
    def test_empty_execution(self):
        config = SimulationConfig()
        execution = ExecutionTrace(
            application="app",
            execution_index=0,
            events=[],
            initial_pids=frozenset({100}),
        )
        filtered = filter_execution(execution)
        assert filtered.accesses == []
        with pytest.raises(_VectorUnsupported):
            _build_tape_vectorized(execution, filtered, config)
        tape = build_replay_tape(execution, filtered, config)
        assert len(tape) == 0
        assert tape.n_accesses == 0
        assert tape.busy_energy == 0.0
        assert_replay_matches_classic(execution, filtered, tape, config)

    def test_zero_gap_all_simple(self):
        """Back-to-back accesses: every step is TAPE_SIMPLE, no gaps."""
        config = SimulationConfig()
        step = config.access_duration(1) / 4.0
        times = [1.0 + i * step for i in range(12)]
        execution = single_process_execution(
            [(time, 0x10) for time in times], end_time=times[-1] + step
        )
        vector, sequential, filtered = build_both(execution, config)
        assert vector is not None
        assert_tapes_bitwise_equal(vector, sequential)
        access_steps = vector.access_index >= 0
        assert (vector.op[access_steps] == TAPE_SIMPLE).all()
        assert not vector.can_fire[access_steps].any()
        assert not vector.record[access_steps].any()
        vector.bind_accesses(filtered.accesses)
        assert_replay_matches_classic(execution, filtered, vector, config)

    def test_single_access_processes(self):
        """Each process touches the disk exactly once: every access is
        the first of its pid (register=True, no feedback)."""
        config = SimulationConfig()
        execution = two_process_execution(
            [(1.0, 0x10)], [(50.0, 0x20)], end_time=120.0
        )
        vector, sequential, filtered = build_both(execution, config)
        assert vector is not None
        assert_tapes_bitwise_equal(vector, sequential)
        access_pids = vector.pids[vector.access_index >= 0]
        assert sorted(access_pids.tolist()) == [100, 101]
        vector.bind_accesses(filtered.accesses)
        assert_replay_matches_classic(execution, filtered, vector, config)


class TestStoreBackedBuilds:
    def _pack(self, path, chunk_rows):
        trace = build_application_trace(
            application_spec("nedit"), scale=0.25
        )
        with StoreWriter(path, chunk_rows=chunk_rows) as writer:
            pack_trace(trace, writer)
        return trace, TraceStore(path)

    @pytest.mark.parametrize("chunk_rows", [1, 2, 3])
    def test_tiny_chunks_match_in_memory_build(self, tmp_path, chunk_rows):
        """Degenerate chunk sizes put every execution boundary on a
        chunk edge; the store-backed tape must still be byte-identical
        to the in-memory one."""
        config = SimulationConfig()
        trace, store = self._pack(tmp_path / f"c{chunk_rows}", chunk_rows)
        stored = store.trace("nedit")
        for mem, st in zip(trace, stored):
            mem_tape = build_replay_tape(
                mem, filter_execution(mem), config
            )
            st_tape = build_replay_tape(st, filter_execution(st), config)
            assert_tapes_bitwise_equal(mem_tape, st_tape)

    def test_store_filter_never_decodes_events(self, tmp_path, monkeypatch):
        """The zero-copy path: filtering a store-backed execution and
        building its tape never materializes decoded event objects."""
        config = SimulationConfig()
        _, store = self._pack(tmp_path / "nodecode", 256)
        monkeypatch.setattr(
            TraceStore,
            "decode_rows",
            lambda *args, **kwargs: pytest.fail(
                "store-backed filter/tape build decoded event objects"
            ),
        )
        built = 0
        for execution in store.trace("nedit"):
            filtered = filter_execution(execution)
            tape = _build_tape_vectorized(execution, filtered, config)
            assert tape is not None
            built += 1
        assert built > 0


class TestMemoryBound:
    def test_store_backed_build_peak_below_event_objects(self, tmp_path):
        """At 10x the usual test scale, building every tape straight
        off the store's memmapped columns allocates less than even
        materializing the decoded event stream — the zero-copy path
        never holds event objects."""
        config = SimulationConfig()
        trace = build_application_trace(
            application_spec("nedit"), scale=1.0
        )
        path = tmp_path / "big"
        with StoreWriter(path, chunk_rows=512) as writer:
            pack_trace(trace, writer)
        store = TraceStore(path)

        tracemalloc.start()
        try:
            for execution in store.trace("nedit"):
                filtered = filter_execution(execution)
                build_replay_tape(execution, filtered, config)
            _, peak_columns = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            events = [
                list(execution.iter_events())
                for execution in store.trace("nedit")
            ]
            _, peak_events = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert sum(len(chunk) for chunk in events) == store.rows
        assert peak_columns < peak_events


class TestTapeValueSemantics:
    def _tape(self, config):
        execution = single_process_execution(
            [(1.0, 0x10), (9.0, 0x20), (40.0, 0x30)], end_time=90.0
        )
        filtered = filter_execution(execution)
        return build_replay_tape(execution, filtered, config), filtered

    def test_pickle_roundtrip_drops_memos(self):
        config = SimulationConfig()
        tape, filtered = self._tape(config)
        tape.replay_views()  # populate memos
        clone = pickle.loads(pickle.dumps(tape))
        assert_tapes_bitwise_equal(tape, clone)
        # The clone starts memo-free and unbound.
        with pytest.raises(ValueError, match="bind_accesses"):
            clone.replay_views()
        clone.bind_accesses(filtered.accesses)
        for name in LANES:
            assert replay_execution(
                clone, make_spec(name, config), config
            ) == replay_execution(tape, make_spec(name, config), config)

    def test_replay_views_requires_bound_accesses(self):
        """A cache-restored tape refuses the generic lane until rebound."""
        config = SimulationConfig()
        execution = single_process_execution(
            [(1.0, 0x10), (40.0, 0x20)], end_time=90.0
        )
        filtered = filter_execution(execution)
        tape = pickle.loads(
            pickle.dumps(_build_tape_sequential(execution, filtered, config))
        )
        with pytest.raises(ValueError, match="bind_accesses"):
            tape.replay_views()
        tape.bind_accesses(filtered.accesses)
        assert tape.replay_views()

    def test_inline_views_match_column_rebuild(self):
        """The sequential builder's inline step views equal the tuples a
        memo-free clone rebuilds from the columns."""
        config = SimulationConfig()
        execution = two_process_execution(
            [(1.0, 0x10), (30.0, 0x20), (75.0, 0x30)],
            [(2.0, 0x40), (31.0, 0x50)],
            end_time=100.0,
        )
        filtered = filter_execution(execution)
        tape = _build_tape_sequential(execution, filtered, config)
        clone = pickle.loads(pickle.dumps(tape))
        clone.bind_accesses(filtered.accesses)
        assert tape.replay_views() == clone.replay_views()
