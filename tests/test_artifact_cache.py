"""Persistent artifact cache: addressing, recovery, and bit-identity."""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.cache.page_cache import CacheConfig
from repro.config import SimulationConfig
from repro.sim.artifact_cache import (
    CACHE_DIR_ENV_VAR,
    ArtifactCache,
    decode_trace,
    encode_trace,
    filter_key,
    resolve_cache,
    trace_fingerprint,
    trace_key,
)
from repro.sim.experiment import ExperimentRunner
from repro.traces.trace import ApplicationTrace
from repro.workloads import build_application
from tests.helpers import single_process_execution


def _tiny_suite() -> dict[str, ApplicationTrace]:
    """Two synthetic applications with real idle periods, two executions
    each — enough to exercise filtering, prediction, and energy."""
    suite = {}
    for app, base_pc in (("alpha", 0x1000), ("beta", 0x7000)):
        executions = []
        for index in range(2):
            points = []
            t = 0.0
            for rep in range(6):
                points.append((t, base_pc + (rep % 3) * 8))
                t += 25.0 + index
            executions.append(
                single_process_execution(
                    points,
                    application=app,
                    execution_index=index,
                    end_time=t,
                )
            )
        suite[app] = ApplicationTrace(app, executions)
    return suite


# -------------------------------------------------------------- store --


def test_put_get_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    hit, value = cache.get(key)
    assert not hit and value is None
    cache.put(key, {"payload": [1, 2, 3]})
    hit, value = cache.get(key)
    assert hit and value == {"payload": [1, 2, 3]}
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert cache.stats.hits == 1


def test_entries_live_under_two_level_layout(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    cache.put(key, "x")
    path = cache.path_for(key)
    assert path.exists()
    assert path.parent.name == key[:2]
    # The atomic-publish protocol leaves no temp files behind.
    assert not list(tmp_path.rglob("*.tmp"))


def test_keys_are_content_addressed():
    fingerprint = "ab" * 20
    base = CacheConfig()
    key = filter_key(fingerprint, 0, base)
    assert key == filter_key(fingerprint, 0, CacheConfig())
    # Any determining input changes the key: execution, fingerprint,
    # or each field of the cache configuration.
    assert key != filter_key(fingerprint, 1, base)
    assert key != filter_key("cd" * 20, 0, base)
    assert key != filter_key(
        fingerprint, 0, CacheConfig(capacity_bytes=512 * 1024)
    )
    assert key != filter_key(fingerprint, 0, CacheConfig(block_size=8192))
    assert key != filter_key(fingerprint, 0, CacheConfig(flush_interval=60.0))
    # Trace keys vary with application and scale.
    assert trace_key("alpha", 1.0) != trace_key("alpha", 0.5)
    assert trace_key("alpha", 1.0) != trace_key("beta", 1.0)


def test_corrupted_entry_recovers(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    cache.put(key, [1, 2, 3])
    cache.path_for(key).write_bytes(b"\x00garbage, not a pickle")
    hit, value = cache.get(key)
    assert not hit and value is None
    assert cache.stats.corrupt == 1
    # The broken entry is gone, and the recompute path heals the cache.
    assert not cache.path_for(key).exists()
    assert cache.get_or_compute(key, lambda: [1, 2, 3]) == [1, 2, 3]
    assert cache.get(key) == (True, [1, 2, 3])


def test_truncated_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    cache.put(key, list(range(1000)))
    blob = cache.path_for(key).read_bytes()
    cache.path_for(key).write_bytes(blob[: len(blob) // 2])
    assert cache.get(key) == (False, None)
    assert cache.stats.corrupt == 1


def test_get_trace_rejects_bogus_payload(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    # Unpickles fine, but is not a trace payload: handled as corruption.
    cache.put(key, ("definitely", "not", "a", "trace"))
    assert cache.get_trace(key) is None
    assert cache.stats.corrupt == 1
    assert not cache.path_for(key).exists()


def test_truncated_entry_quarantined_and_recomputed(tmp_path):
    """Hardened read path: a published entry truncated mid-payload is a
    miss, never an exception — the entry is renamed aside (quarantined)
    and the recompute heals the cache."""
    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    cache.put(key, list(range(1000)))
    path = cache.path_for(key)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.get_or_compute(key, lambda: list(range(1000))) == list(
        range(1000)
    )
    assert cache.stats.corrupt == 1
    assert cache.stats.quarantined == 1
    # The corrupt payload survives for inspection; the key was healed.
    aside = path.with_name(path.name + ".corrupt")
    assert aside.exists() and aside.read_bytes() == blob[: len(blob) // 2]
    assert cache.get(key) == (True, list(range(1000)))


def test_corrupt_read_fault_site_recovers(tmp_path):
    from repro import faults
    from repro.faults import FaultPlan, FaultSpec

    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    cache.put(key, list(range(500)))
    plan = FaultPlan([FaultSpec(site="cache.corrupt-read", at=1)])
    with faults.injected(plan):
        hit, value = cache.get(key)
    assert not hit and value is None
    assert cache.stats.quarantined == 1
    assert len(plan.fired) == 1
    # A missing entry never consumes the fault counter.
    other = FaultPlan([FaultSpec(site="cache.corrupt-read", at=1)])
    with faults.injected(other):
        assert cache.get(trace_key("missing", 1.0)) == (False, None)
    assert other.fired == []


def test_torn_write_fault_site_recovers(tmp_path):
    from repro import faults
    from repro.faults import FaultPlan, FaultSpec

    cache = ArtifactCache(tmp_path)
    key = trace_key("alpha", 1.0)
    plan = FaultPlan([FaultSpec(site="cache.torn-write", at=1)])
    with faults.injected(plan):
        cache.put(key, list(range(500)))
    # The torn entry was published; the next read quarantines it and the
    # compute path rewrites a good copy.
    assert cache.get_or_compute(key, lambda: list(range(500))) == list(
        range(500)
    )
    assert cache.stats.corrupt == 1
    assert cache.get(key) == (True, list(range(500)))


def test_get_or_compute_computes_once(tmp_path):
    cache = ArtifactCache(tmp_path)
    calls = []
    for _ in range(3):
        value = cache.get_or_compute("ab" * 20, lambda: calls.append(1) or 42)
        assert value == 42
    assert len(calls) == 1


# -------------------------------------------------------------- codec --


def test_trace_codec_roundtrip():
    trace = build_application("nedit", scale=0.1)
    payload = encode_trace(trace)
    # The payload survives pickling (that is how it is stored) and
    # decodes back to an identical trace, event for event.
    decoded = decode_trace(pickle.loads(pickle.dumps(payload)))
    assert decoded == trace
    assert decoded.application == trace.application
    for original, rebuilt in zip(trace, decoded):
        assert rebuilt.initial_pids == original.initial_pids
        assert rebuilt.events == original.events
        assert [type(e) for e in rebuilt.events] == [
            type(e) for e in original.events
        ]


def test_codec_roundtrip_preserves_fingerprint():
    trace = build_application("mplayer", scale=0.1)
    decoded = decode_trace(encode_trace(trace))
    assert trace_fingerprint(decoded) == trace_fingerprint(trace)


def test_build_application_persists_trace(tmp_path):
    cold = ArtifactCache(tmp_path)
    built = build_application("nedit", scale=0.1, cache=cold)
    assert cold.stats.stores == 1
    # A fresh process (modeled by a fresh cache instance) loads the
    # stored trace instead of regenerating, and gets an identical one.
    warm = ArtifactCache(tmp_path)
    loaded = build_application("nedit", scale=0.1, cache=warm)
    assert warm.stats.hits == 1
    assert warm.stats.stores == 0
    assert loaded == built


# ----------------------------------------------------- runner wiring --


def test_filtered_persists_and_reloads(tmp_path):
    suite = _tiny_suite()
    config = SimulationConfig()
    cold_cache = ArtifactCache(tmp_path)
    cold = ExperimentRunner(suite, config, artifact_cache=cold_cache)
    cold_results = {app: cold.filtered(app) for app in suite}
    assert cold_cache.stats.stores == 4  # 2 apps x 2 executions

    warm_cache = ArtifactCache(tmp_path)
    warm = ExperimentRunner(suite, config, artifact_cache=warm_cache)
    warm_results = {app: warm.filtered(app) for app in suite}
    assert warm_cache.stats.hits == 4
    assert warm_cache.stats.stores == 0
    assert warm_results == cold_results

    # The in-process memo means the cache is consulted once per app.
    warm.filtered("alpha")
    assert warm_cache.stats.hits == 4


def test_cache_config_change_is_a_miss(tmp_path):
    suite = _tiny_suite()
    first = ExperimentRunner(
        suite, SimulationConfig(), artifact_cache=ArtifactCache(tmp_path)
    )
    first.filtered("alpha")

    bigger = SimulationConfig(cache=CacheConfig(capacity_bytes=512 * 1024))
    second_cache = ArtifactCache(tmp_path)
    second = ExperimentRunner(suite, bigger, artifact_cache=second_cache)
    second.filtered("alpha")
    # Same traces, different cache configuration: stale filtered
    # artifacts must never be served.
    assert second_cache.stats.hits == 0
    assert second_cache.stats.misses == 2


def test_results_bit_identical_cache_on_off(tmp_path):
    suite = _tiny_suite()
    config = SimulationConfig()

    off = ExperimentRunner(suite, config)
    cold = ExperimentRunner(
        suite, config, artifact_cache=ArtifactCache(tmp_path)
    )
    warm = ExperimentRunner(
        suite, config, artifact_cache=ArtifactCache(tmp_path)
    )
    for predictor in ("PCAP", "TP", "Base"):
        for app in suite:
            result_off = off.run_global(app, predictor)
            result_cold = cold.run_global(app, predictor)
            result_warm = warm.run_global(app, predictor)
            assert result_cold == result_off
            assert result_warm == result_off


def test_traced_run_identical_with_cache(tmp_path):
    suite = _tiny_suite()
    config = SimulationConfig()
    off = ExperimentRunner(suite, config, tracing=True)
    warm = ExperimentRunner(
        suite,
        config,
        tracing=True,
        artifact_cache=ArtifactCache(tmp_path),
    )
    warm.filtered("alpha")  # populate the on-disk entries
    warm._filtered.clear()  # force the reload path for the actual run
    result_off = off.run_global("alpha", "PCAP")
    result_warm = warm.run_global("alpha", "PCAP")
    assert result_warm.trace_summary == result_off.trace_summary
    assert result_warm.trace_events == result_off.trace_events


def test_parallel_suite_identical_with_cache(tmp_path):
    suite = _tiny_suite()
    config = SimulationConfig()
    serial = ExperimentRunner(suite, config).run_suite("PCAP", jobs=1)
    parallel = ExperimentRunner(
        suite, config, artifact_cache=ArtifactCache(tmp_path)
    ).run_suite("PCAP", jobs=2)
    assert parallel == serial


def test_declared_fingerprints_skip_content_hashing(tmp_path):
    suite = _tiny_suite()
    runner = ExperimentRunner(
        suite, SimulationConfig(), artifact_cache=ArtifactCache(tmp_path)
    )
    runner.declare_fingerprints({"alpha": "seeded-alpha"})
    runner.filtered("alpha")
    assert runner._fingerprints["alpha"] == "seeded-alpha"
    # Undeclared applications fall back to content fingerprinting.
    runner.filtered("beta")
    assert runner._fingerprints["beta"] == trace_fingerprint(suite["beta"])


# ------------------------------------------------------- concurrency --


def _store_entry(args: tuple[str, str, int]) -> bool:
    root, key, _worker = args
    cache = ArtifactCache(root)
    # Every writer publishes the same logical value (as racing workers
    # on a cold cache do); rename-into-place keeps each publish atomic.
    cache.put(key, {"value": list(range(500))})
    return cache.get(key)[0]


def test_concurrent_writers_leave_readable_entry(tmp_path):
    key = trace_key("alpha", 1.0)
    with multiprocessing.get_context("fork").Pool(4) as pool:
        outcomes = pool.map(
            _store_entry, [(str(tmp_path), key, i) for i in range(8)]
        )
    assert all(outcomes)
    cache = ArtifactCache(tmp_path)
    hit, value = cache.get(key)
    assert hit and value == {"value": list(range(500))}
    assert not list(tmp_path.rglob("*.tmp"))


# --------------------------------------------------------- resolution --


def test_resolve_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
    assert resolve_cache() is None
    assert resolve_cache(tmp_path / "explicit") is not None

    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "from-env"))
    from_env = resolve_cache()
    assert from_env is not None
    assert from_env.root == tmp_path / "from-env"
    # An explicit directory wins over the environment.
    explicit = resolve_cache(tmp_path / "explicit")
    assert explicit is not None and explicit.root == tmp_path / "explicit"

    monkeypatch.setenv(CACHE_DIR_ENV_VAR, "")
    assert resolve_cache() is None
