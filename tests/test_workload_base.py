"""Workload generator machinery: FileSpace, TraceBuilder, build_execution."""

import pytest

from repro.errors import ConfigurationError
from repro.traces.events import ExitEvent, ForkEvent, IOEvent
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
)
from repro.workloads.base import (
    MAIN_PID,
    ApplicationSpec,
    FileSpace,
    TraceBuilder,
    build_application_trace,
    build_execution,
)


def _tiny_spec(**overrides) -> ApplicationSpec:
    steps = (
        IOStep(function="work_read", file="data", fd=3, blocks=2, fresh=True),
    )
    mix = RoutineMix()
    mix.add(Routine("work", (Phase(steps, Think.AWAY),)), 1)
    defaults = dict(
        name="tinyapp",
        executions=3,
        startup=Routine("startup", (Phase(steps, Think.TYPING),)),
        closing=None,
        mix=mix,
        actions_mean=4.0,
        actions_sd=0.5,
        novel_probability=0.0,
    )
    defaults.update(overrides)
    return ApplicationSpec(**defaults)


# ---------------------------------------------------------------- FileSpace
def test_inode_stable_across_executions():
    a = FileSpace("app", 0)
    b = FileSpace("app", 5)
    assert a.inode("config") == b.inode("config")


def test_inodes_differ_across_apps_and_files():
    space = FileSpace("app", 0)
    other = FileSpace("other", 0)
    assert space.inode("a") != space.inode("b")
    assert space.inode("a") != other.inode("a")


def test_hot_range_is_stable():
    space = FileSpace("app", 0)
    assert space.hot_range("f", 4) == space.hot_range("f", 4)


def test_fresh_ranges_never_repeat_within_execution():
    space = FileSpace("app", 0)
    first = space.fresh_range("f", 8)
    second = space.fresh_range("f", 8)
    assert first[0] + first[1] <= second[0]


def test_fresh_ranges_differ_across_executions():
    a = FileSpace("app", 0).fresh_range("f", 8)
    b = FileSpace("app", 1).fresh_range("f", 8)
    assert a != b


def test_fresh_never_overlaps_hot():
    space = FileSpace("app", 3)
    hot_start, hot_len = space.hot_range("f", 16)
    fresh_start, _ = space.fresh_range("f", 16)
    assert fresh_start >= hot_start + 4096


def test_oversized_hot_read_rejected():
    with pytest.raises(ConfigurationError):
        FileSpace("app", 0).hot_range("f", 10**6)


# ------------------------------------------------------------- TraceBuilder
def test_emit_steps_respects_repeat_and_gaps():
    builder = TraceBuilder("app", 0)
    steps = (
        IOStep(function="loop", file="f", fd=3, pre_gap=0.01, repeat=5),
    )
    end = builder.emit_steps(1.0, MAIN_PID, steps)
    assert len(builder.events) == 5
    assert end == pytest.approx(1.05)


def test_emit_steps_routes_named_process():
    builder = TraceBuilder("app", 0)
    steps = (
        IOStep(function="main_read", file="f", fd=3),
        IOStep(function="aux_read", file="g", fd=4, process="aux"),
    )
    builder.emit_steps(0.0, MAIN_PID, steps, {"aux": 2000})
    pids = [e.pid for e in builder.events]
    assert pids == [MAIN_PID, 2000]


def test_emit_steps_unknown_process_rejected():
    builder = TraceBuilder("app", 0)
    steps = (IOStep(function="x", file="f", fd=3, process="ghost"),)
    with pytest.raises(ConfigurationError):
        builder.emit_steps(0.0, MAIN_PID, steps, {})


# ---------------------------------------------------------- build_execution
def test_execution_is_deterministic():
    spec = _tiny_spec()
    first = build_execution(spec, 0)
    second = build_execution(spec, 0)
    assert first.events == second.events


def test_executions_differ_by_index():
    spec = _tiny_spec()
    assert build_execution(spec, 0).events != build_execution(spec, 1).events


def test_execution_validates_and_ends_with_exit():
    execution = build_execution(_tiny_spec(), 0)
    assert isinstance(execution.events[-1], ExitEvent)
    assert execution.events[-1].pid == MAIN_PID


def test_helpers_forked_and_exited():
    helper = HelperProcess(
        name="aux",
        steps=(IOStep(function="aux_read", file="g", fd=9, fresh=True),),
        participation=1.0,
    )
    execution = build_execution(_tiny_spec(helpers=(helper,)), 0)
    forks = [e for e in execution.events if isinstance(e, ForkEvent)]
    exits = [e for e in execution.events if isinstance(e, ExitEvent)]
    assert len(forks) == 1
    assert len(exits) == 2
    helper_io = [
        e
        for e in execution.events
        if isinstance(e, IOEvent) and e.pid == forks[0].pid
    ]
    assert helper_io  # participated at least once (aways precede actions)


def test_scale_shrinks_actions_and_executions():
    spec = _tiny_spec()
    full = build_application_trace(spec, scale=1.0)
    small = build_application_trace(spec, scale=0.4)
    assert len(small.executions) < len(full.executions)
    assert small.total_io_count < full.total_io_count


def test_invalid_scale_rejected():
    with pytest.raises(ConfigurationError):
        build_execution(_tiny_spec(), 0, scale=0.0)


def test_novel_routines_touch_unique_pcs():
    spec = _tiny_spec(novel_probability=0.9)
    execution = build_execution(spec, 0)
    other = build_execution(spec, 1)
    pcs_a = {e.pc for e in execution.io_events}
    pcs_b = {e.pc for e in other.io_events}
    # Novel PCs are execution-specific: symmetric difference non-empty.
    assert pcs_a ^ pcs_b


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        _tiny_spec(executions=0)
    with pytest.raises(ConfigurationError):
        _tiny_spec(novel_probability=1.5)
    with pytest.raises(ConfigurationError):
        _tiny_spec(actions_mean=0.0)
