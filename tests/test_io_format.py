"""JSON-lines trace serialization round-trips."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.traces.events import AccessType, ExitEvent, ForkEvent
from repro.traces.io_format import (
    event_to_record,
    read_application_trace,
    read_executions,
    record_to_event,
    write_application_trace,
    write_execution,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace
from tests.helpers import io_event


def _execution(index: int = 0) -> ExecutionTrace:
    events = [
        ForkEvent(time=0.1, pid=101, parent_pid=100),
        io_event(0.2, pid=100, kind=AccessType.WRITE, block_start=42,
                 block_count=3),
        ExitEvent(time=0.5, pid=101),
        ExitEvent(time=0.6, pid=100),
    ]
    return ExecutionTrace(
        "app", index, events, initial_pids=frozenset({100})
    )


def test_event_record_round_trip_io():
    event = io_event(1.5, kind=AccessType.SYNC_WRITE, block_start=7,
                     block_count=2)
    assert record_to_event(event_to_record(event)) == event


def test_event_record_round_trip_fork_exit():
    fork = ForkEvent(time=0.2, pid=5, parent_pid=4)
    exit_ = ExitEvent(time=0.9, pid=5)
    assert record_to_event(event_to_record(fork)) == fork
    assert record_to_event(event_to_record(exit_)) == exit_


def test_execution_round_trip():
    stream = io.StringIO()
    write_execution(_execution(), stream)
    stream.seek(0)
    restored = read_executions(stream)
    assert len(restored) == 1
    assert restored[0].application == "app"
    assert restored[0].initial_pids == frozenset({100})
    assert restored[0].events == _execution().events


def test_application_trace_round_trip():
    trace = ApplicationTrace("app", [_execution(0), _execution(1)])
    stream = io.StringIO()
    write_application_trace(trace, stream)
    stream.seek(0)
    restored = read_application_trace(stream)
    assert len(restored) == 2
    assert [e.execution_index for e in restored] == [0, 1]


def test_blank_lines_ignored():
    stream = io.StringIO()
    write_execution(_execution(), stream)
    text = stream.getvalue().replace("\n", "\n\n")
    restored = read_executions(io.StringIO(text))
    assert len(restored[0].events) == 4


def test_invalid_json_mid_stream_rejected():
    text = (
        "{not json\n"
        '{"type": "header", "application": "a", "execution": 0}\n'
    )
    with pytest.raises(TraceFormatError, match="line 1: invalid JSON"):
        read_executions(io.StringIO(text))


def test_truncated_final_line_warns_and_stops():
    stream = io.StringIO()
    write_execution(_execution(), stream)
    text = stream.getvalue()
    # Simulate a crash mid-write: the final record is torn in half.
    torn = text.rstrip("\n")
    torn = torn[: len(torn) - len(torn.splitlines()[-1]) // 2 - 1]
    with pytest.warns(RuntimeWarning, match="truncated line"):
        restored = read_executions(io.StringIO(torn))
    # Everything before the tear survives: the partial execution is
    # yielded with the events whose lines were intact.
    assert len(restored) == 1
    assert restored[0].events == _execution().events[:-1]


def test_truncated_lone_line_yields_nothing():
    with pytest.warns(RuntimeWarning):
        assert read_executions(io.StringIO("{not json")) == []


def test_event_before_header_rejected():
    record = '{"type": "exit", "t": 1.0, "pid": 5}'
    with pytest.raises(TraceFormatError):
        read_executions(io.StringIO(record))


def test_unknown_record_type_rejected():
    text = (
        '{"type": "header", "application": "a", "execution": 0}\n'
        '{"type": "mystery"}'
    )
    with pytest.raises(TraceFormatError):
        read_executions(io.StringIO(text))


def test_malformed_io_record_rejected():
    text = (
        '{"type": "header", "application": "a", "execution": 0}\n'
        '{"type": "io", "t": 1.0}'
    )
    with pytest.raises(TraceFormatError):
        read_executions(io.StringIO(text))


def test_empty_stream_rejected_for_application():
    with pytest.raises(TraceFormatError):
        read_application_trace(io.StringIO(""))


def test_malformed_line_fault_surfaces_with_line_number():
    from repro import faults
    from repro.faults import FaultPlan, FaultSpec

    stream = io.StringIO()
    write_application_trace(ApplicationTrace("app", [_execution()]), stream)
    plan = FaultPlan([FaultSpec(site="trace.malformed-line", at=3)])
    with faults.injected(plan):
        stream.seek(0)
        with pytest.raises(TraceFormatError, match="line 3: invalid JSON"):
            read_application_trace(stream)
    # Without the plan the very same stream parses cleanly.
    stream.seek(0)
    assert read_application_trace(stream).executions[0].events
