"""Disk power parameters and the derived breakeven time (paper Table 2)."""

import pytest

from repro.disk.power_model import DiskPowerParameters, fujitsu_mhf2043at
from repro.errors import ConfigurationError


def test_defaults_match_paper_table2():
    params = fujitsu_mhf2043at()
    assert params.busy_power == 2.2
    assert params.idle_power == 0.95
    assert params.standby_power == 0.13
    assert params.spinup_energy == 4.4
    assert params.shutdown_energy == 0.36
    assert params.spinup_time == 1.6
    assert params.shutdown_time == 0.67


def test_breakeven_matches_paper_value():
    """The paper quotes 5.43 s for the Fujitsu MHF 2043 AT."""
    assert fujitsu_mhf2043at().breakeven_time() == pytest.approx(5.43, abs=0.03)


def test_breakeven_is_exact_indifference_point():
    params = fujitsu_mhf2043at()
    be = params.breakeven_time()
    idle = params.energy_idling(be)
    shutdown = params.energy_shutdown_window(be)
    assert idle == pytest.approx(shutdown, rel=1e-9)


def test_shutdown_saves_energy_exactly_beyond_breakeven():
    params = fujitsu_mhf2043at()
    be = params.breakeven_time()
    assert not params.shutdown_saves_energy(be - 0.01)
    assert params.shutdown_saves_energy(be + 0.01)


def test_short_window_still_pays_full_cycle_energy():
    params = fujitsu_mhf2043at()
    assert params.energy_shutdown_window(0.1) == pytest.approx(
        params.cycle_energy
    )


def test_standby_residence_beyond_transitions():
    params = fujitsu_mhf2043at()
    window = params.transition_time + 10.0
    expected = params.cycle_energy + params.standby_power * 10.0
    assert params.energy_shutdown_window(window) == pytest.approx(expected)


def test_breakeven_never_below_transition_time():
    params = DiskPowerParameters(
        spinup_energy=0.0, shutdown_energy=0.0
    )
    assert params.breakeven_time() >= params.transition_time


def test_power_ordering_enforced():
    with pytest.raises(ConfigurationError):
        DiskPowerParameters(idle_power=0.1, standby_power=0.2,
                            low_power_idle_power=0.15)


def test_negative_energy_rejected():
    with pytest.raises(ConfigurationError):
        DiskPowerParameters(spinup_energy=-1.0)


def test_equal_idle_and_standby_power_rejected_for_breakeven():
    params = DiskPowerParameters(
        standby_power=0.95, low_power_idle_power=0.95, idle_power=0.95
    )
    with pytest.raises(ConfigurationError):
        params.breakeven_time()


def test_negative_durations_rejected():
    params = fujitsu_mhf2043at()
    with pytest.raises(ValueError):
        params.energy_idling(-1.0)
    with pytest.raises(ValueError):
        params.energy_shutdown_window(-0.5)
