"""Confidence estimator (PCAPc extension)."""

import pytest

from repro.core.confidence import ConfidenceEstimator


def test_fresh_keys_are_confident_by_default():
    estimator = ConfidenceEstimator()
    assert estimator.allows("anything")


def test_misprediction_lowers_confidence_below_threshold():
    estimator = ConfidenceEstimator()
    estimator.record("k", long_idle=False)
    assert not estimator.allows("k")


def test_confirmation_restores_confidence():
    estimator = ConfidenceEstimator()
    estimator.record("k", long_idle=False)
    estimator.record("k", long_idle=True)
    assert estimator.allows("k")


def test_counters_saturate():
    estimator = ConfidenceEstimator()
    for _ in range(10):
        estimator.record("k", long_idle=True)
    assert estimator.counter("k") == 3
    for _ in range(10):
        estimator.record("k", long_idle=False)
    assert estimator.counter("k") == 0


def test_two_mispredictions_need_two_confirmations():
    estimator = ConfidenceEstimator()
    estimator.record("k", long_idle=False)
    estimator.record("k", long_idle=False)
    estimator.record("k", long_idle=True)
    assert not estimator.allows("k")
    estimator.record("k", long_idle=True)
    assert estimator.allows("k")


def test_keys_are_independent():
    estimator = ConfidenceEstimator()
    estimator.record("a", long_idle=False)
    assert estimator.allows("b")


def test_clear():
    estimator = ConfidenceEstimator()
    estimator.record("a", long_idle=False)
    estimator.clear()
    assert estimator.allows("a")
    assert len(estimator) == 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ConfidenceEstimator(threshold=5, maximum=3)
    with pytest.raises(ValueError):
        ConfidenceEstimator(initial=9, maximum=3)
