"""Activity primitives: think-time model, routines, mixes, helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.events import AccessType
from repro.workloads.activities import (
    HelperProcess,
    IOStep,
    Phase,
    Routine,
    RoutineMix,
    Think,
    ThinkTimeModel,
    burst,
    read_loop,
    routine,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_think_classes_land_in_their_bands(rng):
    model = ThinkTimeModel()
    for _ in range(200):
        assert 0.0 < model.sample(Think.TYPING, rng) < 1.0
        assert 1.0 < model.sample(Think.PAUSE, rng) <= 5.0
        browse = model.sample(Think.BROWSE, rng)
        assert 5.445 < browse <= 10.0
        hesitate = model.sample(Think.HESITATE, rng)
        assert 10.0 < hesitate < 15.445
        assert model.sample(Think.AWAY, rng) >= model.away_min


def test_none_think_is_zero(rng):
    assert ThinkTimeModel().sample(Think.NONE, rng) == 0.0


def test_away_respects_clip(rng):
    model = ThinkTimeModel(away_median=20.0, away_sigma=2.0,
                           away_min=15.0, away_max=50.0)
    values = [model.sample(Think.AWAY, rng) for _ in range(300)]
    assert min(values) >= 15.0
    assert max(values) <= 50.0


def test_iostep_validation():
    with pytest.raises(ConfigurationError):
        IOStep(function="f", file="x", fd=3, repeat=0)
    with pytest.raises(ConfigurationError):
        IOStep(function="f", file="x", fd=3, pre_gap=-0.1)
    with pytest.raises(ConfigurationError):
        IOStep(function="f", file="x", fd=3, blocks=-1)


def test_routine_requires_phases():
    with pytest.raises(ConfigurationError):
        Routine(name="empty", phases=())


def test_routine_io_count_includes_repeats():
    r = routine(
        "r",
        burst(
            read_loop("f", "x", 3, count=10),
            IOStep(function="g", file="y", fd=4),
        ),
    )
    assert r.io_count == 11


def test_burst_and_routine_helpers():
    phase = burst(IOStep(function="f", file="x", fd=3), think=Think.PAUSE)
    assert isinstance(phase, Phase)
    assert phase.think == Think.PAUSE


def test_read_loop_sets_repeat():
    step = read_loop("f", "x", 3, count=7, blocks=2)
    assert step.repeat == 7
    assert step.blocks == 2
    assert step.kind == AccessType.READ


def test_helper_validation():
    with pytest.raises(ConfigurationError):
        HelperProcess(name="h", steps=(), participation=1.5)
    with pytest.raises(ConfigurationError):
        HelperProcess(name="h", steps=(), delay=-1.0)
    with pytest.raises(ConfigurationError):
        HelperProcess(name="h", steps=(), background_participation=-0.1)


def test_mix_requires_entries(rng):
    with pytest.raises(ConfigurationError):
        RoutineMix().choose(rng, None)


def test_mix_respects_weights(rng):
    heavy = routine("heavy", burst(IOStep(function="a", file="x", fd=3)))
    light = routine("light", burst(IOStep(function="b", file="x", fd=3)))
    mix = RoutineMix().add(heavy, 99.0).add(light, 1.0)
    picks = [mix.choose(rng, None).name for _ in range(200)]
    assert picks.count("heavy") > 150


def test_mix_clustering_repeats_previous(rng):
    a = routine("a", burst(IOStep(function="a", file="x", fd=3)))
    b = routine("b", burst(IOStep(function="b", file="x", fd=3)))
    mix = RoutineMix(cluster=0.95).add(a, 1.0).add(b, 1.0)
    repeats = 0
    previous = a
    for _ in range(200):
        chosen = mix.choose(rng, previous)
        if chosen is previous:
            repeats += 1
        previous = chosen
    assert repeats > 150


def test_mix_rejects_nonpositive_weight():
    r = routine("r", burst(IOStep(function="a", file="x", fd=3)))
    with pytest.raises(ConfigurationError):
        RoutineMix().add(r, 0.0)
