"""Per-application workload model structure (paper §6 descriptions)."""


from repro.traces.events import AccessType
from repro.workloads import application_spec
from repro.workloads.activities import Think
from repro.workloads.mplayer import REFILLS_PER_CHAPTER


def _final_thinks(spec):
    return [
        entry.routine.phases[-1].think for entry in spec.mix.entries
    ]


def test_mozilla_has_aliasing_routines():
    """'Some pages require loading additional libraries ... and some do
    not' — the multimedia routines pause mid-path."""
    spec = application_spec("mozilla")
    multi_phase = [
        entry.routine
        for entry in spec.mix.entries
        if len(entry.routine.phases) > 1
    ]
    assert multi_phase, "mozilla needs subpath-aliasing routines"
    for routine in multi_phase:
        assert routine.phases[0].think == Think.PAUSE


def test_mozilla_page_variants_share_structure():
    """Content-dependent paths: several page kinds, same skeleton."""
    spec = application_spec("mozilla")
    click_routines = [
        e.routine for e in spec.mix.entries
        if e.routine.name.startswith("click_link")
    ]
    assert len(click_routines) >= 3
    functions = {
        tuple(step.function for step in r.phases[0].steps)
        for r in click_routines
    }
    assert len(functions) == len(click_routines)  # distinct content PCs


def test_writer_save_as_aliasing():
    """The paper's own example: save, pause, save-as to another file."""
    spec = application_spec("writer")
    save_then = next(
        e.routine for e in spec.mix.entries
        if e.routine.name == "save_then_continue"
    )
    assert len(save_then.phases) == 2
    assert save_then.phases[0].think == Think.PAUSE
    assert save_then.phases[1].think == Think.AWAY
    # The continuation writes to a different descriptor (PCAPf's signal).
    fds_first = {s.fd for s in save_then.phases[0].steps if s.kind != AccessType.READ}
    fds_second = {s.fd for s in save_then.phases[1].steps if s.kind != AccessType.READ}
    assert fds_first != fds_second


def test_impress_twin_workers_share_code():
    spec = application_spec("impress")
    assert len(spec.helpers) == 2
    assert spec.helpers[0].steps == spec.helpers[1].steps


def test_xemacs_is_nearly_single_process():
    """Table 1: local ≈ global for xemacs — the helper barely runs."""
    spec = application_spec("xemacs")
    assert all(h.participation < 0.05 for h in spec.helpers)


def test_nedit_structure():
    """Single process; the one long idle lives in the fixed startup."""
    spec = application_spec("nedit")
    assert spec.helpers == ()
    assert spec.novel_probability == 0.0
    startup_thinks = [phase.think for phase in spec.startup.phases]
    assert startup_thinks.count(Think.AWAY) == 1
    assert all(t != Think.AWAY for t in _final_thinks(spec))


def test_mplayer_chapter_structure():
    """Fixed-size chapters with sub-window refill gaps; the drain idle
    period lives in the closing routine."""
    spec = application_spec("mplayer")
    chapters = [e.routine for e in spec.mix.entries]
    for routine in chapters:
        assert len(routine.phases) == REFILLS_PER_CHAPTER
        # All but the final phase continue within the wait-window.
        for phase in routine.phases[:-1]:
            assert phase.think == Think.TYPING
    assert spec.think_model.typing[1] < 1.0  # refill cadence < wait window
    assert spec.closing is not None
    assert spec.closing.phases[-1].think == Think.AWAY


def test_mplayer_audio_thread_runs_inside_refills():
    spec = application_spec("mplayer")
    refill_steps = spec.mix.entries[0].routine.phases[0].steps
    assert any(step.process == "audio_thread" for step in refill_steps)


def test_every_spec_routine_produces_disk_traffic():
    """Each routine must reach the disk — via a fresh read, a
    synchronous write, or at least a buffered write (flushed later by
    the daemon); a purely cache-hot routine is invisible to the
    predictors and its think time silently merges into neighbouring
    gaps."""
    visible_kinds = (AccessType.WRITE, AccessType.SYNC_WRITE)
    for name in ("mozilla", "writer", "impress", "xemacs"):
        spec = application_spec(name)
        for entry in spec.mix.entries:
            steps = [
                step
                for phase in entry.routine.phases
                for step in phase.steps
            ]
            assert any(
                step.fresh or step.kind in visible_kinds
                for step in steps
            ), (name, entry.routine.name)


def test_think_bands_do_not_straddle_breakeven(config):
    """PAUSE must stay below breakeven and BROWSE above it — the class
    boundaries the whole calibration rests on."""
    for name in ("mozilla", "writer", "impress", "xemacs", "nedit",
                 "mplayer"):
        model = application_spec(name).think_model
        assert model.pause[1] < config.breakeven, name
        assert model.browse[0] > config.breakeven, name
        assert model.hesitate[0] > config.timeout, name
        assert model.hesitate[1] < config.timeout + config.breakeven, name
