"""PageCache: hits/misses, write-back, flush daemon, dirty eviction."""

import pytest

from repro.cache.page_cache import CacheConfig, PageCache
from repro.errors import ConfigurationError


def make_cache(blocks: int = 4, flush_interval: float = 30.0) -> PageCache:
    return PageCache(
        CacheConfig(
            capacity_bytes=blocks * 4096,
            block_size=4096,
            flush_interval=flush_interval,
        )
    )


def test_first_read_misses_second_hits():
    cache = make_cache()
    missed, _ = cache.read(0.0, inode=1, blocks=[10])
    assert missed == [10]
    missed, _ = cache.read(0.1, inode=1, blocks=[10])
    assert missed == []
    assert cache.stats.read_hits == 1
    assert cache.stats.read_misses == 1


def test_capacity_is_block_count():
    assert make_cache(blocks=4).config.capacity_blocks == 4


def test_lru_eviction_on_overflow():
    cache = make_cache(blocks=2)
    cache.read(0.0, 1, [1])
    cache.read(0.1, 1, [2])
    cache.read(0.2, 1, [3])  # evicts block 1
    missed, _ = cache.read(0.3, 1, [1])
    assert missed == [1]


def test_write_is_buffered_not_immediate():
    cache = make_cache()
    forced = cache.write(0.0, inode=1, blocks=[5], pid=42)
    assert forced == []
    assert cache.dirty_block_count == 1


def test_flush_daemon_writes_back_on_schedule():
    cache = make_cache(flush_interval=30.0)
    cache.write(1.0, inode=1, blocks=[5], pid=42)
    assert cache.advance(29.9) == []
    flushed = cache.advance(30.1)
    assert len(flushed) == 1
    assert flushed[0].time == pytest.approx(30.0)
    assert flushed[0].pid == 42
    assert cache.dirty_block_count == 0


def test_multiple_missed_wakeups_coalesce_by_time():
    cache = make_cache(flush_interval=10.0)
    cache.write(1.0, 1, [5], pid=1)
    flushed = cache.advance(35.0)  # wakeups at 10, 20, 30
    assert len(flushed) == 1  # only dirty at the first wakeup
    assert flushed[0].time == pytest.approx(10.0)


def test_dirty_eviction_forces_writeback():
    cache = make_cache(blocks=2)
    cache.write(0.0, 1, [1], pid=7)
    cache.read(0.1, 1, [2])
    _, forced = cache.read(0.2, 1, [3])  # evicts dirty block 1
    assert len(forced) == 1
    assert forced[0].block == 1
    assert forced[0].pid == 7


def test_flush_now_clears_all_dirty():
    cache = make_cache()
    cache.write(0.0, 1, [1, 2], pid=3)
    flushed = cache.flush_now(5.0)
    assert {w.block for w in flushed} == {1, 2}
    assert cache.dirty_block_count == 0
    assert cache.flush_now(6.0) == []


def test_rewriting_dirty_block_keeps_original_dirty_time():
    cache = make_cache(flush_interval=30.0)
    cache.write(1.0, 1, [5], pid=1)
    cache.write(25.0, 1, [5], pid=2)
    flushed = cache.advance(31.0)
    assert len(flushed) == 1
    assert flushed[0].pid == 1  # first dirtier owns the write-back


def test_read_hit_ratio():
    cache = make_cache()
    cache.read(0.0, 1, [1])
    cache.read(0.1, 1, [1])
    cache.read(0.2, 1, [1])
    assert cache.stats.read_hit_ratio == pytest.approx(2 / 3)


def test_invalid_configs_rejected():
    with pytest.raises(ConfigurationError):
        CacheConfig(capacity_bytes=100, block_size=4096)
    with pytest.raises(ConfigurationError):
        CacheConfig(flush_interval=0.0)
    with pytest.raises(ConfigurationError):
        CacheConfig(block_size=0)


def test_resident_block_count():
    cache = make_cache(blocks=4)
    cache.read(0.0, 1, [1, 2, 3])
    assert cache.resident_block_count == 3
