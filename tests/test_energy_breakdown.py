"""EnergyBreakdown ledger arithmetic (Figure 8 components)."""

import pytest

from repro.disk.energy import EnergyBreakdown, sum_breakdowns


def test_total_sums_components():
    ledger = EnergyBreakdown()
    ledger.add_busy(1.0)
    ledger.add_idle(2.0, long_period=False)
    ledger.add_idle(3.0, long_period=True)
    ledger.add_power_cycle(0.5)
    assert ledger.total == pytest.approx(6.5)


def test_standby_counts_inside_idle_bucket():
    ledger = EnergyBreakdown()
    ledger.add_standby(2.0, long_period=True)
    assert ledger.idle_long == pytest.approx(2.0)
    assert ledger.standby == pytest.approx(2.0)
    assert ledger.total == pytest.approx(2.0)


def test_fractions_of_baseline():
    ledger = EnergyBreakdown(busy=1.0, idle_short=1.0, idle_long=2.0)
    fractions = ledger.fractions_of(8.0)
    assert fractions["busy"] == pytest.approx(0.125)
    assert fractions["idle_long"] == pytest.approx(0.25)
    assert fractions["power_cycle"] == 0.0


def test_fractions_reject_nonpositive_baseline():
    with pytest.raises(ValueError):
        EnergyBreakdown().fractions_of(0.0)


def test_savings_versus_baseline():
    base = EnergyBreakdown(idle_long=10.0)
    managed = EnergyBreakdown(idle_long=2.0, power_cycle=1.0)
    assert managed.savings_versus(base) == pytest.approx(0.7)


def test_savings_can_be_negative_for_wasteful_policies():
    base = EnergyBreakdown(idle_long=1.0)
    wasteful = EnergyBreakdown(idle_long=1.0, power_cycle=1.0)
    assert wasteful.savings_versus(base) < 0


def test_combined_is_componentwise():
    a = EnergyBreakdown(busy=1.0, idle_short=2.0)
    b = EnergyBreakdown(busy=0.5, idle_long=3.0, power_cycle=0.1)
    c = a.combined(b)
    assert c.busy == pytest.approx(1.5)
    assert c.idle_short == pytest.approx(2.0)
    assert c.idle_long == pytest.approx(3.0)
    assert c.power_cycle == pytest.approx(0.1)
    # operands untouched
    assert a.busy == pytest.approx(1.0)


def test_sum_breakdowns_matches_repeated_combined():
    parts = [
        EnergyBreakdown(busy=float(i), idle_long=2.0 * i) for i in range(5)
    ]
    total = sum_breakdowns(parts)
    assert total.busy == pytest.approx(10.0)
    assert total.idle_long == pytest.approx(20.0)


def test_tiny_negative_noise_clamped():
    ledger = EnergyBreakdown()
    ledger.add_idle(-1e-12, long_period=True)
    assert ledger.idle_long == 0.0


def test_genuinely_negative_energy_rejected():
    ledger = EnergyBreakdown()
    with pytest.raises(ValueError):
        ledger.add_busy(-1.0)


def test_approx_equals():
    a = EnergyBreakdown(busy=1.0)
    b = EnergyBreakdown(busy=1.0 + 1e-12)
    assert a.approx_equals(b)
    assert not a.approx_equals(EnergyBreakdown(busy=2.0))
