"""Benchmark report schema and the perf-regression gate."""

from __future__ import annotations

import pytest

from repro.perf import (
    BenchResult,
    PerfReport,
    Regression,
    compare_reports,
    render_report,
)


def _report(mode="quick", scale=0.4, filter_best=0.002, sim_best=0.001):
    report = PerfReport(mode=mode, scale=scale)
    report.results["cache_filter"] = BenchResult(
        name="cache_filter",
        mean_s=filter_best * 1.2,
        best_s=filter_best,
        rounds=20,
        items=688,
    )
    report.results["global_simulation"] = BenchResult(
        name="global_simulation",
        mean_s=sim_best * 1.2,
        best_s=sim_best,
        rounds=20,
        items=94,
    )
    report.results["artifact_cache_cold"] = BenchResult(
        name="artifact_cache_cold", mean_s=2.0, best_s=2.0, rounds=1
    )
    report.results["artifact_cache_warm"] = BenchResult(
        name="artifact_cache_warm", mean_s=0.5, best_s=0.5, rounds=1
    )
    return report


def test_report_json_roundtrip():
    report = _report()
    clone = PerfReport.from_json(report.to_json())
    assert clone.mode == report.mode
    assert clone.scale == report.scale
    assert set(clone.results) == set(report.results)
    for name, result in report.results.items():
        other = clone.results[name]
        assert (other.mean_s, other.best_s, other.rounds, other.items) == (
            result.mean_s, result.best_s, result.rounds, result.items
        )


def test_gate_passes_within_tolerance():
    baseline = _report()
    # 20% slower on the gated metrics: inside the default 30% band.
    current = _report(filter_best=0.0025, sim_best=0.00125)
    assert compare_reports(current, baseline) == []


def test_gate_flags_regression():
    baseline = _report()
    current = _report(filter_best=0.004)  # throughput halved
    regressions = compare_reports(current, baseline)
    assert [r.name for r in regressions] == ["cache_filter"]
    assert regressions[0].drop == pytest.approx(0.5)


def test_gate_ignores_ungated_benchmarks():
    baseline = _report()
    current = _report()
    # The single-shot artifact-cache timings are informational only.
    current.results["artifact_cache_warm"] = BenchResult(
        name="artifact_cache_warm", mean_s=50.0, best_s=50.0, rounds=1
    )
    assert compare_reports(current, baseline) == []


def test_gate_improvements_never_flagged():
    baseline = _report()
    current = _report(filter_best=0.0005, sim_best=0.0002)
    assert compare_reports(current, baseline) == []


def test_incomparable_reports_raise():
    with pytest.raises(ValueError):
        compare_reports(_report(mode="quick"), _report(mode="full"))
    with pytest.raises(ValueError):
        compare_reports(_report(scale=0.4), _report(scale=1.0))


def test_regression_drop_metric():
    regression = Regression(
        name="cache_filter", baseline_ops=100.0, current_ops=60.0
    )
    assert regression.drop == pytest.approx(0.4)


def test_render_report_mentions_every_benchmark():
    text = render_report(_report(), baseline=_report())
    assert "cache_filter" in text
    assert "global_simulation" in text
    assert "vs baseline" in text
    assert "cold→warm speedup" in text
