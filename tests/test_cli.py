"""Command-line interface."""

import pytest

from repro.cli import main

STRACE_SAMPLE = """\
100 1000.000000 [00007f0000001000] openat(AT_FDCWD, "/data/file", O_RDONLY) = 3
100 1000.010000 [00007f0000001010] read(3, "x", 4096) = 4096
100 1030.000000 [00007f0000001010] read(3, "x", 4096) = 4096
100 1030.100000 +++ exited with 0 +++
"""


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_table2_fast_path(capsys):
    code, out, _ = run_cli(capsys, "table", "2")
    assert code == 0
    assert "Breakeven" in out


def test_table1_small_scale(capsys):
    code, out, _ = run_cli(capsys, "table", "1", "--scale", "0.1")
    assert code == 0
    assert "mozilla" in out


def test_unknown_table_number(capsys):
    code, _, err = run_cli(capsys, "table", "9", "--scale", "0.1")
    assert code == 2
    assert "tables 1-3" in err


def test_figure7(capsys):
    code, out, _ = run_cli(capsys, "figure", "7", "--scale", "0.1")
    assert code == 0
    assert "AVERAGE" in out


def test_figure7_chart_mode(capsys):
    code, out, _ = run_cli(capsys, "figure", "7", "--scale", "0.1",
                           "--chart")
    assert code == 0
    assert "|" in out  # the 100% marker of the stacked bars


def test_figure8(capsys):
    code, out, _ = run_cli(capsys, "figure", "8", "--scale", "0.1")
    assert code == 0
    assert "savings" in out


def test_unknown_figure(capsys):
    code, _, err = run_cli(capsys, "figure", "3", "--scale", "0.1")
    assert code == 2
    assert "figures 6-10" in err


def test_simulate(capsys):
    code, out, _ = run_cli(
        capsys, "simulate", "--app", "nedit", "--predictor", "PCAP",
        "--scale", "0.2",
    )
    assert code == 0
    assert "coverage" in out
    assert "prediction table" in out


def test_generate_and_inspect(capsys, tmp_path):
    out_file = tmp_path / "nedit.jsonl"
    code, out, _ = run_cli(
        capsys, "generate", "--app", "nedit", "--out", str(out_file),
        "--scale", "0.2",
    )
    assert code == 0
    assert out_file.exists()
    code, out, _ = run_cli(capsys, "inspect", str(out_file))
    assert code == 0
    assert "application      : nedit" in out
    assert "executions" in out


def test_import_strace(capsys, tmp_path):
    source = tmp_path / "trace.txt"
    source.write_text(STRACE_SAMPLE)
    converted = tmp_path / "converted.jsonl"
    code, out, _ = run_cli(
        capsys, "import-strace", str(source), "--app", "demo",
        "--out", str(converted), "--predictor", "TP",
    )
    assert code == 0
    assert "imported 3 I/O events" in out
    assert converted.exists()
    assert "TP: coverage" in out


def test_bad_arguments_exit_nonzero(capsys):
    with pytest.raises(SystemExit):
        main(["simulate", "--app", "notanapp"])


def test_report_to_file(capsys, tmp_path):
    out = tmp_path / "report.md"
    code, stdout, _ = run_cli(
        capsys, "report", "--scale", "0.1", "--out", str(out)
    )
    assert code == 0
    text = out.read_text()
    assert "# Reproduction report" in text
    assert "shape checks passed" in text
    assert "Figure 7" in text


def test_user_errors_are_one_line_not_tracebacks(capsys, tmp_path):
    junk = tmp_path / "junk.txt"
    junk.write_text("not a trace\n")
    code, _, err = run_cli(capsys, "inspect", str(junk))
    assert code == 1
    assert "error:" in err and "Traceback" not in err

    code, _, err = run_cli(capsys, "inspect", str(tmp_path / "missing.jsonl"))
    assert code == 1
    assert "error:" in err

    code, _, err = run_cli(capsys, "import-strace", str(junk))
    assert code == 1
    assert "no parseable strace lines" in err

    code, _, err = run_cli(capsys, "table", "1", "--scale", "0")
    assert code == 1
    assert "scale must be positive" in err


def test_trace_subcommand(capsys, tmp_path):
    out_file = tmp_path / "timeline.jsonl"
    code, out, _ = run_cli(
        capsys, "trace", "--app", "nedit", "--predictor", "PCAP",
        "--scale", "0.2", "--out", str(out_file), "--limit", "10",
    )
    assert code == 0
    assert "shutdown-fired events" in out
    assert "(OK)" in out
    assert out_file.exists()

    from repro.sim.tracing import read_jsonl

    with out_file.open() as stream:
        events = read_jsonl(stream)
    assert events
    fired = sum(1 for e in events if e.kind == "shutdown-fired")
    assert f"shutdown-fired events {fired}" in out


def test_simulate_trace_out(capsys, tmp_path):
    out_file = tmp_path / "sim-trace.jsonl"
    code, out, _ = run_cli(
        capsys, "simulate", "--app", "nedit", "--predictor", "PCAP",
        "--scale", "0.2", "--trace-out", str(out_file),
    )
    assert code == 0
    assert out_file.exists()
    assert out_file.read_text().strip()


# ---------------------------------------------------------------------------
# The resilient front end: repro run / repro faults
# ---------------------------------------------------------------------------


def test_run_subcommand_with_checkpoint_and_resume(capsys, tmp_path):
    ckpt = str(tmp_path / "run.ckpt")
    code, out, _ = run_cli(
        capsys, "run", "--scale", "0.1", "--predictor", "TP",
        "--app", "mozilla", "--app", "nedit", "--checkpoint", ckpt,
    )
    assert code == 0
    assert "2 cells — 2 ok (0 resumed from checkpoint)" in out
    assert "mozilla" in out and "nedit" in out

    code, out, _ = run_cli(
        capsys, "run", "--scale", "0.1", "--predictor", "TP",
        "--app", "mozilla", "--app", "nedit", "--resume", ckpt,
    )
    assert code == 0
    assert "2 ok (2 resumed from checkpoint)" in out


def test_run_subcommand_reports_terminal_failures(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    code, out, _ = run_cli(
        capsys, "run", "--scale", "0.1", "--predictor", "TP",
        "--app", "mozilla", "--app", "nedit", "--retries", "1",
        "--fault-plan", "worker.fail,cell=0,attempts=99",
    )
    assert code == 1
    assert "1 failed" in out
    assert "FAILED after 2 attempt(s)" in out
    # The healthy cell still reported a result.
    assert "nedit" in out


def test_run_subcommand_recovers_transient_fault(capsys):
    code, out, _ = run_cli(
        capsys, "run", "--scale", "0.1", "--predictor", "TP",
        "--app", "mozilla",
        "--fault-plan", "worker.fail,cell=0,attempts=1",
    )
    assert code == 0
    assert "recovered after 1 failed attempt(s)" in out
    assert "fault(s) fired" in out


def test_fault_plan_env_var_reaches_commands(capsys, monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_PLAN", "worker.fail,cell=0,attempts=99"
    )
    code, out, _ = run_cli(
        capsys, "run", "--scale", "0.1", "--predictor", "TP",
        "--app", "mozilla", "--retries", "0",
    )
    assert code == 1
    assert "FAILED after 1 attempt(s)" in out


def test_malformed_fault_plan_is_a_clean_error(capsys):
    code, _, err = run_cli(
        capsys, "run", "--scale", "0.1", "--app", "mozilla",
        "--fault-plan", "bogus.site",
    )
    assert code == 1
    assert "unknown fault site" in err


def test_faults_subcommand_in_process(capsys, monkeypatch):
    # Force the in-process path: deterministic and pool-free, so the
    # canned crash becomes an injected failure.
    code, out, _ = run_cli(
        capsys, "faults", "--scale", "0.1", "--jobs", "1",
        "--cell-timeout", "3",
    )
    assert code == 0
    assert "chaos verdict: OK" in out
    assert "[PASS] healthy cells bit-identical" in out
    assert "FAILED after 2 attempt(s)" in out
