"""Spin-up latency accounting (the §6.3 user-irritation argument)."""

import pytest

from repro.config import SimulationConfig
from repro.disk.disk import SimulatedDisk
from repro.disk.power_model import fujitsu_mhf2043at
from repro.sim.experiment import ExperimentRunner
from repro.traces.trace import ApplicationTrace
from tests.helpers import single_process_execution


@pytest.fixture
def params():
    return fujitsu_mhf2043at()


def test_request_after_standby_waits_for_spinup(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    disk.serve(100.0, 0.0)
    disk.finalize()
    assert disk.delayed_requests == 1
    assert disk.delay_seconds == pytest.approx(params.spinup_time)
    assert disk.irritating_delays == 0  # off-window beat breakeven


def test_request_mid_spin_down_waits_longer(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    disk.serve(1.2, 0.0)  # 0.47 s of spin-down remain
    disk.finalize()
    assert disk.delay_seconds == pytest.approx(
        params.spinup_time + (1.0 + params.shutdown_time - 1.2)
    )
    assert disk.irritating_delays == 1  # off-window 0.2 s: user waiting


def test_short_offwindow_counts_as_irritation(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    disk.serve(4.0, 0.0)  # off-window 3 s < breakeven
    disk.finalize()
    assert disk.irritating_delays == 1


def test_trailing_shutdown_delays_nobody(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    disk.finalize(100.0)
    assert disk.shutdown_count == 1
    assert disk.delayed_requests == 0


def test_no_shutdown_no_delay(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.serve(100.0, 0.0)
    disk.finalize()
    assert disk.delayed_requests == 0
    assert disk.delay_seconds == 0.0


def _latency_suite():
    # Repeating single-PC bursts with long gaps: PCAP-learnable.
    executions = []
    for index in range(4):
        points = []
        t = 0.0
        for rep in range(4):
            points.append((t, 0x1000))
            t += 30.0
        executions.append(
            single_process_execution(
                points, application="app", execution_index=index, end_time=t
            )
        )
    return {"app": ApplicationTrace("app", executions)}


def test_runner_aggregates_delays():
    runner = ExperimentRunner(_latency_suite(), SimulationConfig())
    result = runner.run_global("app", "TP")
    # Every shutdown except trailing ones delays its next request.
    assert result.delayed_requests > 0
    assert result.delay_seconds >= (
        result.delayed_requests * runner.config.disk.spinup_time
    )
    assert result.delayed_requests <= result.shutdowns


def test_more_aggressive_policies_delay_more():
    runner = ExperimentRunner(_latency_suite(), SimulationConfig())
    tp = runner.run_global("app", "TP")
    ideal = runner.run_global("app", "Ideal")
    # Both shut down in every gap here, so delays match; the aggressive
    # breakeven timeout can only delay at least as many requests as the
    # conservative 10 s timer.
    tp_be = runner.run_global("app", "TP-BE")
    assert tp_be.delayed_requests >= tp.delayed_requests
    assert ideal.delayed_requests >= tp.delayed_requests
