"""PC-based stride prefetching extension."""

import pytest

from repro.cache.page_cache import CacheConfig
from repro.cache.prefetch import PCStridePredictor, PrefetchingPageCache
from repro.errors import ConfigurationError

PC = 0x1234


def make_cache(blocks: int = 64, depth: int = 4) -> PrefetchingPageCache:
    return PrefetchingPageCache(
        CacheConfig(capacity_bytes=blocks * 4096, block_size=4096),
        depth=depth,
    )


# ---------------------------------------------------------------- predictor
def test_predictor_needs_confidence():
    predictor = PCStridePredictor()
    predictor.observe(PC, 0)
    predictor.observe(PC, 16)
    assert predictor.predict(PC, 16, 2) == []  # stride seen once
    predictor.observe(PC, 32)
    predictor.observe(PC, 48)
    assert predictor.predict(PC, 48, 2) == [64, 80]


def test_predictor_loses_confidence_on_irregular_access():
    predictor = PCStridePredictor()
    for block in (0, 16, 32, 48):
        predictor.observe(PC, block)
    for block in (7, 300, 5):
        predictor.observe(PC, block)
    assert predictor.predict(PC, 5, 2) == []


def test_predictor_zero_stride_never_predicts():
    predictor = PCStridePredictor()
    for _ in range(5):
        predictor.observe(PC, 42)
    assert predictor.predict(PC, 42, 3) == []


def test_predictor_per_pc_isolation():
    predictor = PCStridePredictor()
    for block in (0, 16, 32, 48):
        predictor.observe(PC, block)
    assert predictor.predict(0x9999, 48, 2) == []


def test_predictor_validation():
    with pytest.raises(ConfigurationError):
        PCStridePredictor(confidence_threshold=0)


# -------------------------------------------------------------------- cache
def test_sequential_stream_misses_once_per_depth_window():
    cache = make_cache(depth=4)
    misses = 0
    for i in range(32):
        missed, _ = cache.read(0.1 * i, 1, [i * 16], pc=PC)
        misses += len(missed)
    # After the training misses, prefetch covers most demand reads.
    assert misses < 16
    assert cache.prefetch_hits > 0
    assert cache.prefetch_accuracy > 0.5


def test_random_access_never_prefetches():
    cache = make_cache()
    import random

    rng = random.Random(7)
    for i in range(32):
        cache.read(0.1 * i, 1, [rng.randrange(10**6)], pc=PC)
    assert cache.prefetched_blocks == 0


def test_prefetch_respects_capacity():
    cache = make_cache(blocks=8, depth=4)
    for i in range(64):
        cache.read(0.1 * i, 1, [i * 16], pc=PC)
        assert cache.resident_block_count <= 8


def test_prefetch_evicting_dirty_block_forces_writeback():
    cache = make_cache(blocks=4, depth=3)
    cache.write(0.0, 1, [999_999], pid=5, pc=0x77)
    forced_all = []
    for i in range(8):
        _, forced = cache.read(1.0 + 0.1 * i, 1, [i * 16], pc=PC)
        forced_all.extend(forced)
    assert any(w.block == 999_999 for w in forced_all)


def test_depth_validation():
    with pytest.raises(ConfigurationError):
        make_cache(depth=0)


def test_prefetch_in_filter_pipeline(config):
    """Prefetching reduces the disk accesses of a streaming workload."""
    from repro.cache import filter_execution
    from repro.workloads import build_application

    execution = build_application("mplayer", scale=0.15).executions[0]
    plain = filter_execution(execution, config.cache)
    prefetching = filter_execution(
        execution, cache=PrefetchingPageCache(config.cache, depth=4)
    )
    assert len(prefetching.accesses) < len(plain.accesses)
