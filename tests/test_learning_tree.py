"""Learning Tree: adaptive tree over idle-class sequences."""

import pytest

from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    PredictorSource,
)
from repro.predictors.learning_tree import (
    PAPER_LT_HISTORY,
    LearningTree,
    LTPredictor,
    LTVariant,
)
from tests.helpers import access


def feed_periods(predictor, classes, start=0.0):
    """Feed a sequence of idle classes separated by accesses."""
    t = start
    for idle_class in classes:
        length = {"0": 3.0, "1": 30.0}[idle_class]
        predictor.on_access(access(t))
        predictor.on_idle_end(
            IdleFeedback(
                t + 0.01,
                t + 0.01 + length,
                IdleClass.LONG if idle_class == "1" else IdleClass.SHORT,
            )
        )
        t += length + 1.0
    return t


def test_paper_history_length():
    assert PAPER_LT_HISTORY == 8


def test_untrained_tree_predicts_none():
    tree = LearningTree()
    assert tree.predict((1, 0, 1)) is None


def test_figure2_pattern_two_shorts_then_long():
    """The paper's Figure 2: two short periods repeatedly followed by a
    long one teach the tree to predict the long period."""
    tree = LearningTree(max_depth=4)
    for _ in range(3):
        tree.train((0, 0), outcome_long=True)
        tree.train((0,), outcome_long=False)  # short follows one short
    assert tree.predict((1, 0, 0)) is True
    assert tree.predict((1, 0)) is False


def test_saturated_deep_node_overrides_shallow():
    """Training interleaves contexts: depth-1 history (1,) mostly long,
    but the specific context (0, 1) consistently short.  The saturated
    deep node must win in its context while the shallow node decides
    elsewhere.  (Note train() reinforces every suffix, so the shallow
    (1,) node absorbs both streams.)"""
    tree = LearningTree(max_depth=4)
    for _ in range(4):
        tree.train((1,), outcome_long=True)   # (1,) -> up
        tree.train((0, 1), outcome_long=False)  # (0,1) saturates short
        tree.train((1,), outcome_long=True)   # keep (1,) >= 2
    assert tree.predict((0, 1)) is False
    assert tree.predict((1,)) is True


def test_single_observation_does_not_predict_long():
    """Nodes start at a neutral counter: one long observation must not
    immediately trigger shutdowns (slow-start training)."""
    tree = LearningTree()
    tree.train((0,), outcome_long=True)
    assert tree.predict((0,)) is not True


def test_empty_history_never_trains():
    tree = LearningTree()
    tree.train((), outcome_long=True)
    assert len(tree) == 0


def test_lt_predictor_emits_primary_on_confident_long():
    tree = LearningTree(max_depth=4)
    lt = LTPredictor(tree)
    feed_periods(lt, "111")  # trains (1,)->long twice
    intent = lt.on_access(access(100.0))
    assert intent.source == PredictorSource.PRIMARY
    assert intent.delay == pytest.approx(lt.wait_window)


def test_lt_predictor_falls_back_during_training():
    lt = LTPredictor(LearningTree())
    intent = lt.on_access(access(0.0))
    assert intent.source == PredictorSource.BACKUP


def test_lt_short_prediction_also_backs_off_to_timeout():
    tree = LearningTree(max_depth=4)
    lt = LTPredictor(tree)
    feed_periods(lt, "000")
    intent = lt.on_access(access(100.0))
    assert intent.source == PredictorSource.BACKUP


def test_lt_sub_window_gaps_invisible():
    lt = LTPredictor(LearningTree())
    lt.on_access(access(0.0))
    lt.on_idle_end(IdleFeedback(0.01, 0.5, IdleClass.SUB_WINDOW))
    assert len(lt.tree) == 0
    assert list(lt._history) == []


def test_lt_begin_execution_clears_history_not_tree():
    tree = LearningTree(max_depth=4)
    lt = LTPredictor(tree)
    feed_periods(lt, "11")
    lt.begin_execution(0.0)
    assert list(lt._history) == []
    assert len(tree) > 0


def test_variant_shares_tree_across_processes():
    variant = LTVariant()
    a = variant.create_local(1)
    b = variant.create_local(2)
    assert a.tree is b.tree is variant.tree


def test_variant_reuse_policy():
    keep = LTVariant(reuse_tree=True)
    keep.tree.train((1,), outcome_long=True)
    keep.on_execution_end()
    assert keep.table_size == 1

    discard = LTVariant(reuse_tree=False)
    discard.tree.train((1,), outcome_long=True)
    discard.on_execution_end()
    assert discard.table_size == 0
    assert discard.name == "LTa"
    assert keep.name == "LT"


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        LearningTree(max_depth=0)
    with pytest.raises(ConfigurationError):
        LTPredictor(LearningTree(), wait_window=-0.5)
    with pytest.raises(ConfigurationError):
        LTPredictor(LearningTree(), backup_timeout=0.0)
