"""Trace event records and ordering."""

import pytest

from repro.traces.events import (
    KERNEL_FLUSH_PC,
    AccessType,
    ExitEvent,
    ForkEvent,
    event_sort_key,
)
from tests.helpers import io_event


def test_blocks_range():
    event = io_event(0.0, block_start=100, block_count=4)
    assert list(event.blocks) == [100, 101, 102, 103]


def test_zero_blocks_is_empty_range():
    event = io_event(0.0, block_count=0)
    assert len(event.blocks) == 0


def test_is_write_covers_all_write_kinds():
    assert io_event(0.0, kind=AccessType.WRITE).is_write
    assert io_event(0.0, kind=AccessType.SYNC_WRITE).is_write
    assert io_event(0.0, kind=AccessType.FLUSH).is_write
    assert not io_event(0.0, kind=AccessType.READ).is_write


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        io_event(-1.0)


def test_pc_must_be_32bit():
    with pytest.raises(ValueError):
        io_event(0.0, pc=2**32)
    with pytest.raises(ValueError):
        io_event(0.0, pc=-1)


def test_fork_of_self_rejected():
    with pytest.raises(ValueError):
        ForkEvent(time=0.0, pid=5, parent_pid=5)


def test_sort_key_orders_fork_io_exit_at_same_instant():
    fork = ForkEvent(time=1.0, pid=2, parent_pid=1)
    io = io_event(1.0, pid=2)
    exit_ = ExitEvent(time=1.0, pid=2)
    keys = [event_sort_key(e) for e in (exit_, io, fork)]
    assert sorted(keys) == [
        event_sort_key(fork),
        event_sort_key(io),
        event_sort_key(exit_),
    ]


def test_sort_key_primary_order_is_time():
    early_exit = ExitEvent(time=0.5, pid=1)
    late_fork = ForkEvent(time=1.0, pid=2, parent_pid=3)
    assert event_sort_key(early_exit) < event_sort_key(late_fork)


def test_kernel_flush_pc_is_valid_32bit_pc():
    assert 0 <= KERNEL_FLUSH_PC < 2**32
