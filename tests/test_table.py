"""PredictionTable: lookup/train semantics, LRU capacity, stats."""

from repro.core.table import PredictionTable, merge_tables, storage_bytes


def test_untrained_lookup_misses():
    table = PredictionTable()
    assert not table.lookup(0x1234)
    assert table.stats.lookups == 1
    assert table.stats.matches == 0


def test_train_then_lookup_hits():
    table = PredictionTable()
    assert table.train(0x1234)
    assert table.lookup(0x1234)
    assert table.stats.match_ratio == 1.0


def test_retrain_is_idempotent():
    table = PredictionTable()
    assert table.train(1)
    assert not table.train(1)
    assert len(table) == 1


def test_capacity_evicts_lru_entry():
    table = PredictionTable(capacity=2)
    table.train(1)
    table.train(2)
    table.lookup(1)  # refresh 1
    table.train(3)  # evicts 2
    assert 1 in table
    assert 2 not in table
    assert 3 in table
    assert table.stats.evictions == 1


def test_training_existing_key_refreshes_recency():
    table = PredictionTable(capacity=2)
    table.train(1)
    table.train(2)
    table.train(1)  # refresh, no insert
    table.train(3)  # evicts 2
    assert 1 in table and 2 not in table


def test_forget():
    table = PredictionTable()
    table.train(5)
    assert table.forget(5)
    assert not table.forget(5)
    assert 5 not in table


def test_keys_in_lru_order():
    table = PredictionTable()
    table.train(1)
    table.train(2)
    table.lookup(1)
    assert table.keys() == [2, 1]


def test_clear_discards_everything():
    table = PredictionTable()
    table.train(1)
    table.clear()
    assert len(table) == 0


def test_tuple_keys_supported():
    table = PredictionTable()
    key = (0x1234, 7, 3)
    table.train(key)
    assert table.lookup(key)
    assert not table.lookup((0x1234, 7, 4))


def test_storage_bytes_uses_paper_encoding():
    """Each entry encodes into a 4-byte word (§6.4.2); 139 entries →
    556 bytes, the paper's mozilla PCAPfh figure."""
    table = PredictionTable()
    for i in range(139):
        table.train(i)
    assert storage_bytes(table) == 556


def test_merge_tables():
    a = PredictionTable()
    a.train(1)
    b = PredictionTable()
    b.train(2)
    b.train(1)
    merged = merge_tables([a, b])
    assert len(merged) == 2
