"""Property tests: LRU mapping invariants against a reference model."""

from collections import OrderedDict

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.lru import LRUMapping

keys = st.integers(min_value=0, max_value=20)
operations = st.lists(
    st.tuples(st.sampled_from(["put", "get", "pop", "peek"]), keys),
    max_size=200,
)


class ModelLRU:
    """Straightforward reference implementation."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = OrderedDict()

    def put(self, key):
        if key in self.data:
            self.data.move_to_end(key)
            return None
        self.data[key] = key
        if len(self.data) > self.capacity:
            return self.data.popitem(last=False)
        return None

    def get(self, key):
        if key not in self.data:
            return None
        self.data.move_to_end(key)
        return self.data[key]

    def pop(self, key):
        return self.data.pop(key, None)

    def peek(self, key):
        return self.data.get(key)


@given(operations, st.integers(min_value=1, max_value=8))
def test_lru_matches_reference_model(ops, capacity):
    real = LRUMapping(capacity=capacity)
    model = ModelLRU(capacity)
    for op, key in ops:
        if op == "put":
            assert real.put(key, key) == model.put(key)
        elif op == "get":
            assert real.get(key) == model.get(key)
        elif op == "pop":
            assert real.pop(key) == model.pop(key)
        else:
            assert real.peek(key) == model.peek(key)
        assert len(real) == len(model.data)
        assert list(real) == list(model.data)


@given(operations, st.integers(min_value=1, max_value=8))
def test_lru_never_exceeds_capacity(ops, capacity):
    lru = LRUMapping(capacity=capacity)
    for op, key in ops:
        if op == "put":
            lru.put(key, key)
        assert len(lru) <= capacity
