"""Predictor-envelope workloads: clockwork / chaos / shapeshifter."""

import pytest

from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.workloads.extremes import (
    build_chaos,
    build_clockwork,
    build_extremes,
    build_shapeshifter,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(build_extremes(executions=8), SimulationConfig())


def test_all_executions_validate():
    for trace in build_extremes(executions=3).values():
        for execution in trace.executions:
            execution.validate()


def test_clockwork_is_deterministic():
    a = build_clockwork(executions=2)
    b = build_clockwork(executions=2)
    assert a.executions[0].events == b.executions[0].events


def test_chaos_pcs_never_repeat():
    trace = build_chaos(executions=3)
    pcs = [e.pc for ex in trace.executions for e in ex.io_events]
    assert len(set(pcs)) == len(pcs)


def test_clockwork_pcap_approaches_perfect_coverage(runner):
    result = runner.run_global("clockwork", "PCAP")
    stats = result.stats
    # One training period, then the primary covers everything.
    assert stats.hit_fraction > 0.95
    assert stats.hits_primary >= stats.opportunities - 2
    assert stats.misses == 0
    assert result.table_size == 1  # a single signature suffices


def test_chaos_pcap_degrades_to_timeout_never_below(runner):
    pcap = runner.run_global("chaos", "PCAP").stats
    tp = runner.run_global("chaos", "TP").stats
    # The primary never fires (no signature recurs) ...
    assert pcap.hits_primary == 0
    # ... and the backup gives exactly the timeout predictor's coverage
    # (the §4.3 safety floor).
    assert pcap.hits_backup == tp.hits_primary
    assert pcap.miss_fraction == pytest.approx(tp.miss_fraction)


def test_chaos_bloats_the_table(runner):
    result = runner.run_global("chaos", "PCAP")
    # Every long idle period trains a new never-reused signature.
    assert result.table_size > 50


def test_shapeshifter_retrains_after_the_switch(runner):
    result = runner.run_global("shapeshifter", "PCAP")
    stats = result.stats
    # Both code versions get learned: coverage is high overall, with
    # exactly two training transients (one per version).
    assert stats.hit_fraction > 0.9
    assert result.table_size == 2


def test_shapeshifter_lru_capacity_one_forces_retraining():
    """With a one-entry table the regime switch evicts the old entry —
    the paper's 'simple LRU mechanism would be sufficient'."""
    from repro.core.variants import pcap
    from repro.predictors.registry import pcap_spec

    config = SimulationConfig()
    runner = ExperimentRunner(
        {"shapeshifter": build_shapeshifter(executions=8)}, config
    )
    spec = pcap_spec(config, pcap(table_capacity=1))
    result = runner.run_global("shapeshifter", spec)
    assert result.table_size == 1
    assert result.stats.hit_fraction > 0.85
