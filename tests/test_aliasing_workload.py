"""PC-aliasing adversarial workload (repro.workloads.aliasing).

Checks the construction itself — the two routines must genuinely alias
under PCAP's commutative arithmetic-sum signature while carrying
opposite idle behaviour — and the behavioural consequence: PCAP's
primary predictor systematically fires into the short gaps, while the
timeout predictor (no path signal at all) stays clean.
"""

from __future__ import annotations

from repro.sim.experiment import ExperimentRunner
from repro.traces.events import IOEvent
from repro.workloads import build_pc_alias
from repro.workloads.extremes import build_extremes


def burst_pcs(execution) -> list[tuple[int, ...]]:
    """The PC tuple of each burst, split on the >1s think gaps."""
    bursts: list[tuple[int, ...]] = []
    current: list[int] = []
    last_time = None
    for event in execution.events:
        if not isinstance(event, IOEvent):
            continue
        if last_time is not None and event.time - last_time > 1.0 and current:
            bursts.append(tuple(current))
            current = []
        current.append(event.pc)
        last_time = event.time
    if current:
        bursts.append(tuple(current))
    return bursts


def test_routines_alias_under_arithmetic_sum():
    app = build_pc_alias(executions=2)
    bursts = burst_pcs(app.executions[0])
    assert len(bursts) == 10
    evens = {bursts[i] for i in range(0, 10, 2)}
    odds = {bursts[i] for i in range(1, 10, 2)}
    (routine,) = evens
    (reversed_routine,) = odds
    # Different control paths...
    assert routine != reversed_routine
    assert routine == reversed_routine[::-1]
    # ...same commutative signature.
    assert sum(routine) == sum(reversed_routine)


def test_build_is_deterministic():
    assert build_pc_alias(executions=4) == build_pc_alias(executions=4)


def test_executions_validate_and_scale():
    app = build_pc_alias(executions=5)
    assert app.application == "pc_alias"
    assert len(app.executions) == 5
    for execution in app.executions:
        execution.validate()


def test_extremes_suite_includes_pc_alias():
    suite = build_extremes(executions=2)
    assert set(suite) == {"clockwork", "chaos", "shapeshifter", "pc_alias"}
    assert suite["pc_alias"].application == "pc_alias"


def test_pcap_primary_misfires_where_tp_is_clean(config):
    """The designed failure mode: after training "long" on routine A,
    PCAP's primary fires into every aliased routine-B short gap; TP,
    blind to paths, never fires before its timeout and misses nothing."""
    runner = ExperimentRunner(
        {"pc_alias": build_pc_alias(executions=8)}, config
    )
    pcap = runner.run_global("pc_alias", "PCAP")
    tp = runner.run_global("pc_alias", "TP")
    assert tp.stats.misses == 0
    assert pcap.stats.misses_primary > 0
    # The premature fires dominate: almost every opportunity also has an
    # aliased short gap misfire next to it.
    assert pcap.stats.misses_primary > 0.8 * pcap.stats.opportunities
    # Both routines collapse to one table entry per (signature, pid) —
    # the alias is invisible to the table itself.
    assert pcap.table_size == 2
