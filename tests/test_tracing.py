"""Structured tracing layer: recorder, JSONL round trip, determinism,
serial/parallel equivalence, and reconciliation with PredictionStats."""

import io
import pickle

import pytest

from repro.analysis.timeline import render_timeline, render_trace_summary
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.tracing import (
    AccessServed,
    GapResolved,
    HistoryUpdate,
    LowPowerEntered,
    ProcessExited,
    ProcessStarted,
    ShutdownCancelled,
    ShutdownFired,
    ShutdownScheduled,
    SignatureLookup,
    SpinUpDelay,
    TableTrain,
    TraceFormatError,
    TraceRecorder,
    UnknownPidRegistered,
    WaitWindowExpired,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    summarize,
    write_jsonl,
)

ONE_OF_EACH = [
    AccessServed(time=1.0, pid=100, pc=0x1000, block_count=2, busy_until=1.2),
    GapResolved(time=9.0, start=1.2, length=7.8, shutdown_at=2.5),
    ShutdownScheduled(time=2.5, source="primary"),
    ShutdownFired(
        time=2.5, offset=1.3, gap_length=7.8, source="primary", hit=True
    ),
    ShutdownCancelled(time=3.0, reason="wait-window"),
    WaitWindowExpired(time=2.5, source="backup"),
    SignatureLookup(time=1.0, pid=100, key=(0x1234, 0b101, 3), hit=True),
    TableTrain(time=9.0, pid=100, key=0x1234, inserted=False),
    HistoryUpdate(time=9.0, pid=100, bit=1, register=0b11),
    SpinUpDelay(time=9.0, seconds=1.6, irritating=False),
    LowPowerEntered(time=1.4),
    ProcessStarted(time=0.0, pid=100),
    ProcessExited(time=10.0, pid=100),
    UnknownPidRegistered(time=5.0, pid=200),
]


# ---------------------------------------------------------------------------
# Recorder and serialization
# ---------------------------------------------------------------------------


def test_recorder_counts_and_events():
    recorder = TraceRecorder()
    for event in ONE_OF_EACH:
        recorder.emit(event)
    assert len(recorder) == len(ONE_OF_EACH)
    assert recorder.events == tuple(ONE_OF_EACH)
    counts = recorder.counts()
    assert counts["access-served"] == 1
    assert sum(counts.values()) == len(ONE_OF_EACH)
    assert counts == summarize(ONE_OF_EACH)


def test_ring_buffer_drops_events_but_keeps_full_counts():
    recorder = TraceRecorder(capacity=3)
    for event in ONE_OF_EACH:
        recorder.emit(event)
    assert len(recorder) == 3
    assert recorder.events == tuple(ONE_OF_EACH[-3:])
    assert recorder.emitted == len(ONE_OF_EACH)
    assert sum(recorder.counts().values()) == len(ONE_OF_EACH)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_jsonl_round_trip_every_event_kind():
    stream = io.StringIO()
    assert write_jsonl(ONE_OF_EACH, stream) == len(ONE_OF_EACH)
    stream.seek(0)
    assert read_jsonl(stream) == ONE_OF_EACH


def test_event_dict_round_trip_preserves_tuple_keys():
    event = SignatureLookup(time=1.0, pid=7, key=(1, 2, 3), hit=False)
    restored = event_from_dict(event_to_dict(event))
    assert restored == event
    assert isinstance(restored.key, tuple)


def test_unknown_kind_rejected():
    with pytest.raises(TraceFormatError):
        event_from_dict({"ev": "no-such-event", "time": 1.0})


def test_extra_fields_rejected():
    record = event_to_dict(LowPowerEntered(time=1.0))
    record["bogus"] = 1
    with pytest.raises(TraceFormatError):
        event_from_dict(record)


def test_malformed_jsonl_rejected():
    with pytest.raises(TraceFormatError):
        read_jsonl(io.StringIO("not json\n"))
    with pytest.raises(TraceFormatError):
        read_jsonl(io.StringIO("[1, 2]\n"))


def test_events_are_picklable():
    assert pickle.loads(pickle.dumps(ONE_OF_EACH)) == ONE_OF_EACH


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

APP = "mplayer"


def _traced_run(small_suite, *, predictor="PCAP"):
    runner = ExperimentRunner(small_suite, tracing=True)
    return runner.run_global(APP, predictor)


def test_traced_run_reconciles_with_stats(small_suite):
    """Acceptance: shutdown-fired events == stats hits + misses."""
    result = _traced_run(small_suite)
    fired = [e for e in result.trace_events if e.kind == "shutdown-fired"]
    assert len(fired) == result.stats.shutdowns
    hits = sum(1 for e in fired if e.hit)
    assert hits == result.stats.hits
    assert len(fired) - hits == result.stats.misses
    assert result.trace_summary == summarize(result.trace_events)


def test_traced_run_covers_the_event_vocabulary(small_suite):
    result = _traced_run(small_suite)
    kinds = set(result.trace_summary)
    assert {
        "access-served",
        "gap-resolved",
        "proc-start",
        "proc-exit",
        "shutdown-sched",
        "shutdown-fired",
        "sig-lookup",
        "table-train",
        "wait-expired",
    } <= kinds
    assert result.trace_summary["access-served"] == result.total_disk_accesses


def test_tracing_disabled_results_identical(small_suite):
    """Tracing must be observation only: identical stats and ledger,
    and a disabled run carries no events at all."""
    plain = ExperimentRunner(small_suite).run_global(APP, "PCAP")
    traced = _traced_run(small_suite)
    assert plain.trace_summary is None
    assert plain.trace_events == ()
    assert traced.stats == plain.stats
    assert traced.ledger == plain.ledger
    assert traced.shutdowns == plain.shutdowns
    assert traced.delay_seconds == plain.delay_seconds


def test_serial_replay_is_deterministic(small_suite):
    first = _traced_run(small_suite)
    second = _traced_run(small_suite)
    assert first.trace_events == second.trace_events


def test_traced_local_run(small_suite):
    runner = ExperimentRunner(small_suite, tracing=True)
    result = runner.run_local(APP, "PCAP")
    assert result.trace_summary is not None
    fired = [e for e in result.trace_events if e.kind == "shutdown-fired"]
    assert len(fired) == result.stats.shutdowns


def test_trace_capacity_bounds_retained_events(small_suite):
    runner = ExperimentRunner(small_suite, tracing=True, trace_capacity=16)
    result = runner.run_global(APP, "PCAP")
    assert len(result.trace_events) == 16
    assert sum(result.trace_summary.values()) > 16


def test_multistate_run_emits_low_power_events(small_suite):
    runner = ExperimentRunner(small_suite, tracing=True)
    result = runner.run_global(APP, "PCAP", multistate=True)
    assert result.trace_summary.get("low-power", 0) > 0


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_parallel_cells_reproduce_serial_event_streams(small_suite):
    apps = ["mplayer", "nedit"]
    serial = ExperimentRunner(small_suite, tracing=True)
    expected = {
        app: serial.run_global(app, "PCAP").trace_events for app in apps
    }
    parallel = ParallelExperimentRunner(small_suite, jobs=2, tracing=True)
    results = parallel.run_suite("PCAP", applications=apps)
    for app in apps:
        assert results[app].trace_events == expected[app]
        assert results[app].trace_summary == summarize(expected[app])


# ---------------------------------------------------------------------------
# Timeline rendering
# ---------------------------------------------------------------------------


def test_render_timeline_lines_and_limit():
    text = render_timeline(ONE_OF_EACH, limit=5, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert len([line for line in lines if line.startswith("t=")]) == 5
    assert "more events" in lines[-1]
    full = render_timeline(ONE_OF_EACH)
    assert len(full.splitlines()) == len(ONE_OF_EACH)
    assert "HIT" in full and "wait-window" in full


def test_render_timeline_empty():
    assert "no events" in render_timeline([])


def test_render_trace_summary():
    text = render_trace_summary(summarize(ONE_OF_EACH))
    assert "access-served" in text and "event counts" in text
    assert render_trace_summary({}) == "(no events recorded)"
