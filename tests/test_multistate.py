"""MultiStateDisk: the §7 low-power-idle extension."""

import pytest

from repro.disk.multistate import MultiStateDisk
from repro.disk.disk import SimulatedDisk
from repro.disk.power_model import fujitsu_mhf2043at
from repro.errors import DiskStateError


@pytest.fixture
def params():
    return fujitsu_mhf2043at()


def test_low_power_reduces_gap_energy(params):
    plain = SimulatedDisk(params)
    plain.serve(0.0, 0.0)
    plain.serve(4.0, 0.0)
    plain.finalize()

    multi = MultiStateDisk(params)
    multi.serve(0.0, 0.0)
    multi.enter_low_power(1.0)
    multi.serve(4.0, 0.0)
    multi.finalize()

    saved = (params.idle_power - params.low_power_idle_power) * 3.0
    assert plain.ledger.total - multi.ledger.total == pytest.approx(saved)


def test_low_power_then_shutdown(params):
    disk = MultiStateDisk(params)
    disk.serve(0.0, 0.0)
    disk.enter_low_power(0.5)
    disk.schedule_shutdown(1.5)
    disk.serve(50.0, 0.0)
    disk.finalize()
    expected_idle = (
        params.idle_power * 0.5
        + params.low_power_idle_power * 1.0
        + params.standby_power * (48.5 - params.transition_time)
    )
    assert disk.ledger.idle_long == pytest.approx(expected_idle)
    assert disk.ledger.power_cycle == pytest.approx(params.cycle_energy)


def test_low_power_without_shutdown_ends_at_next_request(params):
    disk = MultiStateDisk(params)
    disk.serve(0.0, 0.0)
    disk.enter_low_power(2.0)
    disk.serve(10.0, 0.0)
    disk.finalize()
    expected = params.idle_power * 2.0 + params.low_power_idle_power * 8.0
    assert disk.ledger.idle_long == pytest.approx(expected)
    assert disk.shutdown_count == 0


def test_low_power_entry_while_busy_rejected(params):
    disk = MultiStateDisk(params)
    disk.serve(0.0, 1.0)
    with pytest.raises(DiskStateError):
        disk.enter_low_power(0.5)


def test_double_low_power_entry_rejected(params):
    disk = MultiStateDisk(params)
    disk.serve(0.0, 0.0)
    disk.enter_low_power(1.0)
    with pytest.raises(DiskStateError):
        disk.enter_low_power(2.0)


def test_low_power_state_resets_between_gaps(params):
    disk = MultiStateDisk(params)
    disk.serve(0.0, 0.0)
    disk.enter_low_power(1.0)
    disk.serve(3.0, 0.0)
    # New gap: entering low power again must be legal.
    disk.enter_low_power(4.0)
    disk.serve(6.0, 0.0)
    disk.finalize()
    assert disk.ledger.total > 0


def test_gap_without_low_power_matches_plain_disk(params):
    plain = SimulatedDisk(params)
    multi = MultiStateDisk(params)
    for disk in (plain, multi):
        disk.serve(0.0, 0.1)
        disk.schedule_shutdown(2.0)
        disk.serve(30.0, 0.1)
        disk.finalize(40.0)
    assert plain.ledger.approx_equals(multi.ledger)
