"""strace importer: parsing real tracer output into executions."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.events import AccessType, ExitEvent, ForkEvent
from repro.traces.strace_import import parse_strace

SIMPLE = """\
100 1000000000.000000 [00007f0000001000] openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3
100 1000000000.010000 [00007f0000001010] read(3, "x", 4096) = 4096
100 1000000000.020000 [00007f0000001010] read(3, "x", 4096) = 4096
100 1000000000.030000 [00007f0000001020] close(3) = 0
100 1000000000.100000 +++ exited with 0 +++
"""

FORKING = """\
100 1000.000000 [00007f0000002000] clone(child_stack=NULL, flags=SIGCHLD) = 101
101 1000.100000 [00007f0000002010] write(4, "y", 100) = 100
101 1000.200000 +++ exited with 0 +++
100 1000.300000 [00007f0000002020] fsync(4) = 0
100 1000.400000 +++ exited with 0 +++
"""


def test_simple_trace_parses():
    execution, stats = parse_strace(SIMPLE, application="hosts")
    execution.validate()
    assert stats.io_events == 3  # open + 2 reads (close is bookkeeping)
    assert stats.exits == 1
    io = execution.io_events
    assert io[0].kind == AccessType.OPEN
    assert io[1].kind == AccessType.READ
    assert io[1].fd == 3


def test_times_rebased_to_zero():
    execution, _ = parse_strace(SIMPLE)
    assert execution.events[0].time == pytest.approx(0.0)
    assert execution.end_time == pytest.approx(0.1)


def test_pc_folded_to_32_bits():
    execution, _ = parse_strace(SIMPLE)
    for event in execution.io_events:
        assert 0 < event.pc < 2**32


def test_same_call_site_gets_same_pc():
    execution, _ = parse_strace(SIMPLE)
    reads = [e for e in execution.io_events if e.kind == AccessType.READ]
    assert reads[0].pc == reads[1].pc


def test_sequential_reads_advance_block_cursor():
    execution, _ = parse_strace(SIMPLE)
    reads = [e for e in execution.io_events if e.kind == AccessType.READ]
    assert reads[0].inode == reads[1].inode
    assert reads[1].block_start == reads[0].block_start + reads[0].block_count


def test_fork_and_child_io():
    execution, stats = parse_strace(FORKING, application="forky")
    execution.validate()
    assert stats.forks == 1
    forks = [e for e in execution.events if isinstance(e, ForkEvent)]
    assert forks[0].pid == 101 and forks[0].parent_pid == 100
    child_io = [e for e in execution.io_events if e.pid == 101]
    assert len(child_io) == 1
    assert child_io[0].kind == AccessType.WRITE


def test_fsync_becomes_sync_write():
    execution, _ = parse_strace(FORKING)
    kinds = [e.kind for e in execution.io_events]
    assert AccessType.SYNC_WRITE in kinds


def test_failed_syscalls_skipped():
    text = "100 1.0 [1000] read(3, \"\", 64) = -1\n100 2.0 +++ exited with 0 +++"
    execution, stats = parse_strace(text)
    assert stats.failed_syscalls == 1
    assert execution.io_events == []


def test_unknown_syscalls_counted_not_fatal():
    text = (
        "100 1.000000 [1000] mmap(NULL, 4096) = 0\n"
        "100 1.100000 [1010] read(3, \"x\", 10) = 10\n"
        "100 2.000000 +++ exited with 0 +++\n"
    )
    execution, stats = parse_strace(text)
    assert stats.skipped_lines == 1
    assert stats.io_events == 1


def test_missing_exit_synthesized():
    text = '100 1.000000 [1000] read(3, "x", 10) = 10'
    execution, stats = parse_strace(text)
    execution.validate()
    exits = [e for e in execution.events if isinstance(e, ExitEvent)]
    assert len(exits) == 1
    assert stats.exits == 1


def test_pidless_single_process_trace():
    text = (
        '1.000000 [1000] read(3, "x", 10) = 10\n'
        "2.000000 +++ exited with 0 +++\n"
    )
    execution, _ = parse_strace(text)
    assert execution.io_events[0].pid == 1


def test_empty_input_rejected():
    with pytest.raises(TraceFormatError):
        parse_strace("just noise\nnothing matches\n")


def test_imported_trace_flows_through_the_pipeline(config):
    """An imported execution runs end-to-end through cache + engine."""
    from repro.cache import filter_execution
    from repro.predictors import make_spec
    from repro.sim.engine import run_global_execution

    execution, _ = parse_strace(FORKING, application="forky")
    filtered = filter_execution(execution, config.cache)
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    assert result.disk_accesses >= 1
