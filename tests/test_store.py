"""Trace store: round-trips, bit-identity, corruption handling, memory.

The streaming contract under test (DESIGN §10): running a suite from an
on-disk store must be *bit-identical* to running it from the in-memory
containers — same filter results, same energy, same predictor stats,
same structured trace events — while the store path touches one chunk
window at a time.
"""

from __future__ import annotations

import json
import pickle
import tracemalloc

import pytest

from repro import faults
from repro.config import SimulationConfig
from repro.errors import TraceStoreError
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import ParallelExperimentRunner
from repro.traces.io_format import write_application_trace
from repro.traces.store import (
    MANIFEST_NAME,
    StoreWriter,
    TraceStore,
    pack_jsonl,
    pack_trace,
)
from repro.workloads import (
    APPLICATIONS,
    application_spec,
    build_application_trace,
    build_suite,
    pack_generated,
)


@pytest.fixture(scope="module")
def store_and_suite(tmp_path_factory, small_suite):
    """The 0.25-scale suite packed once, with small chunks so every
    application spans several chunk windows."""
    path = tmp_path_factory.mktemp("trace-store") / "suite-store"
    store = pack_generated(path, scale=0.25, chunk_rows=1024)
    return store, small_suite


class TestRoundTrip:
    def test_events_bit_identical(self, store_and_suite):
        store, suite = store_and_suite
        for name, trace in suite.items():
            stored = store.trace(name)
            assert len(stored) == len(trace.executions)
            for mem, st in zip(trace, stored):
                assert list(st.iter_events()) == mem.events

    def test_metadata_matches(self, store_and_suite):
        store, suite = store_and_suite
        for name, trace in suite.items():
            stored = store.trace(name)
            assert stored.total_io_count == trace.total_io_count
            for mem, st in zip(trace, stored):
                assert st.application == mem.application
                assert st.execution_index == mem.execution_index
                assert st.initial_pids == mem.initial_pids
                assert st.start_time == mem.start_time
                assert st.end_time == mem.end_time
                assert st.event_count == mem.event_count
                assert st.pids == mem.pids
                assert st.lifetimes() == mem.lifetimes()
                assert st.liveness_events() == mem.liveness_events()

    def test_chunk_windows_cover_execution(self, store_and_suite):
        store, _ = store_and_suite
        stored = store.trace("mplayer")
        execution = max(stored, key=lambda e: e.event_count)
        windows = execution.chunk_windows()
        assert len(windows) > 1  # actually exercises chunking
        assert windows[0][0] == execution.row_start
        assert windows[-1][1] == execution.row_start + execution.event_count
        for (_, a_end), (b_start, _) in zip(windows, windows[1:]):
            assert a_end == b_start
        assert all(
            end - start <= store.chunk_rows for start, end in windows
        )

    def test_materialize_equals_source(self, store_and_suite):
        store, suite = store_and_suite
        stored = store.trace("nedit")
        materialized = stored.materialize()
        assert materialized.executions == suite["nedit"].executions

    def test_jsonl_pack_matches_generated_pack(self, tmp_path, small_suite):
        jsonl = tmp_path / "nedit.jsonl"
        with open(jsonl, "w", encoding="utf-8") as stream:
            write_application_trace(small_suite["nedit"], stream)
        with StoreWriter(tmp_path / "store") as writer:
            with open(jsonl, "r", encoding="utf-8") as stream:
                packed = pack_jsonl(stream, writer)
        store = TraceStore(tmp_path / "store")
        assert packed == len(small_suite["nedit"].executions)
        stored = store.trace("nedit")
        for mem, st in zip(small_suite["nedit"], stored):
            assert list(st.iter_events()) == mem.events

    def test_fingerprint_independent_of_chunk_size(
        self, tmp_path, small_suite
    ):
        fingerprints = []
        for chunk_rows in (128, 4096):
            path = tmp_path / f"chunks-{chunk_rows}"
            with StoreWriter(path, chunk_rows=chunk_rows) as writer:
                pack_trace(small_suite["nedit"], writer)
            fingerprints.append(
                TraceStore(path).fingerprints()["nedit"]
            )
        assert fingerprints[0] == fingerprints[1]

    def test_trace_pickle_is_tiny_and_reopens(self, store_and_suite):
        store, _ = store_and_suite
        trace = store.trace("xemacs")
        blob = pickle.dumps(trace)
        assert len(blob) < 500
        clone = pickle.loads(blob)
        assert clone.fingerprint == trace.fingerprint
        assert (
            list(clone.executions[0].iter_events())
            == list(trace.executions[0].iter_events())
        )


class TestBitIdentity:
    def test_serial_suite_identical(self, store_and_suite):
        store, suite = store_and_suite
        mem = ExperimentRunner(suite)
        st = ExperimentRunner(store.suite())
        for predictor in ("PCAP", "TP", "Ideal"):
            assert mem.run_suite(predictor) == st.run_suite(predictor)

    def test_parallel_suite_identical(self, store_and_suite):
        store, suite = store_and_suite
        mem = ExperimentRunner(suite)
        st = ParallelExperimentRunner(store.suite(), jobs=2)
        assert st.run_suite("PCAP") == mem.run_suite("PCAP")

    def test_traced_runs_identical(self, store_and_suite):
        store, suite = store_and_suite
        mem = ExperimentRunner(suite, tracing=True, trace_capacity=512)
        st = ExperimentRunner(
            store.suite(), tracing=True, trace_capacity=512
        )
        assert (
            mem.run_global("writer", "PCAP")
            == st.run_global("writer", "PCAP")
        )
        assert (
            mem.run_local("writer", "PCAP")
            == st.run_local("writer", "PCAP")
        )

    def test_resilient_run_identical(self, store_and_suite, tmp_path):
        store, suite = store_and_suite
        mem = ExperimentRunner(suite)
        st = ParallelExperimentRunner(store.suite(), jobs=1)
        report = st.run_suite_resilient(
            "PCAP", checkpoint=str(tmp_path / "cells.ckpt")
        )
        assert report.complete
        assert report.results == mem.run_suite("PCAP")

    def test_runner_fingerprint_comes_from_manifest(self, store_and_suite):
        store, _ = store_and_suite
        runner = ExperimentRunner(store.suite())
        for name in APPLICATIONS:
            assert runner.fingerprint(name) == store.fingerprints()[name]

    def test_streaming_path_does_not_memoize(self, store_and_suite):
        store, _ = store_and_suite
        runner = ExperimentRunner(store.suite())
        runner.run_global("nedit", "PCAP")
        assert runner._filtered == {}

    def test_prewarm_skips_streaming_traces(self, store_and_suite):
        store, _ = store_and_suite
        runner = ParallelExperimentRunner(store.suite(), jobs=2)
        runner.prewarm()
        assert runner._filtered == {}


class TestFullScale:
    def test_full_suite_scale_one_bit_identity(self, tmp_path):
        """Acceptance gate: the six-application suite at scale 1.0 runs
        store-backed with results bit-identical to the in-memory path.

        Built directly (not via :func:`build_suite`) so the scale-1.0
        entry does not evict the shared session suite from the
        ``lru_cache``-backed suite memo mid-run."""
        suite = {
            name: build_application_trace(application_spec(name), scale=1.0)
            for name in APPLICATIONS
        }
        path = tmp_path / "full-store"
        with StoreWriter(path) as writer:
            for trace in suite.values():
                pack_trace(trace, writer)
        store = TraceStore(path)
        mem = ExperimentRunner(suite)
        st = ExperimentRunner(store.suite())
        assert mem.run_suite("PCAP") == st.run_suite("PCAP")


class TestCorruption:
    def _pack_one(self, path):
        return pack_generated(
            path, scale=0.25, applications=("nedit",), chunk_rows=256
        )

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(TraceStoreError, match="not a trace store"):
            TraceStore(tmp_path / "empty")

    def test_corrupt_manifest_quarantined(self, tmp_path):
        store_dir = tmp_path / "store"
        self._pack_one(store_dir)
        (store_dir / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(TraceStoreError, match="quarantined"):
            TraceStore(store_dir)
        assert (store_dir / (MANIFEST_NAME + ".corrupt")).exists()

    def test_unsupported_version_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        self._pack_one(store_dir)
        manifest = json.loads(
            (store_dir / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        manifest["version"] = 999
        (store_dir / MANIFEST_NAME).write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        with pytest.raises(TraceStoreError, match="version"):
            TraceStore(store_dir)

    def test_truncated_column_quarantined(self, tmp_path):
        store_dir = tmp_path / "store"
        store = self._pack_one(store_dir)
        column = store_dir / "columns" / "time.bin"
        with open(column, "r+b") as stream:
            stream.truncate(column.stat().st_size // 2)
        with pytest.raises(TraceStoreError, match="quarantined"):
            list(store.trace("nedit").executions[0].iter_events())
        assert (store_dir / "columns" / "time.bin.corrupt").exists()

    def test_missing_column_is_clear_error(self, tmp_path):
        store_dir = tmp_path / "store"
        store = self._pack_one(store_dir)
        (store_dir / "columns" / "pid.bin").unlink()
        with pytest.raises(TraceStoreError, match="missing"):
            list(store.trace("nedit").executions[0].iter_events())

    def test_faults_hook_fires_on_store_reads(self, tmp_path):
        """The chaos harness's cache.corrupt-read site covers store
        column reads: the injected truncation is detected, the file is
        quarantined, and the error is a clean TraceStoreError."""
        store_dir = tmp_path / "store"
        store = self._pack_one(store_dir)
        faults.install(faults.parse_fault_plan("cache.corrupt-read"))
        try:
            with pytest.raises(TraceStoreError, match="quarantined"):
                list(store.trace("nedit").executions[0].iter_events())
        finally:
            faults.clear()
        corrupted = list((store_dir / "columns").glob("*.corrupt"))
        assert corrupted

    def test_writer_refuses_to_overwrite(self, tmp_path):
        store_dir = tmp_path / "store"
        self._pack_one(store_dir)
        with pytest.raises(TraceStoreError, match="refusing"):
            StoreWriter(store_dir)

    def test_aborted_writer_leaves_no_manifest(self, tmp_path, small_suite):
        store_dir = tmp_path / "store"
        with pytest.raises(RuntimeError):
            with StoreWriter(store_dir) as writer:
                writer.write_execution(small_suite["nedit"].executions[0])
                raise RuntimeError("boom")
        assert not (store_dir / MANIFEST_NAME).exists()
        with pytest.raises(TraceStoreError, match="not a trace store"):
            TraceStore(store_dir)


class TestMemoryBound:
    def test_streaming_peak_below_one_materialized_execution(self, tmp_path):
        """Streaming the *whole* store allocates less than materializing
        even a single execution's event list: peak memory tracks the
        chunk window, not the trace."""
        store = pack_generated(
            tmp_path / "store",
            scale=0.25,
            applications=("mplayer",),
            chunk_rows=512,
        )
        executions = store.trace("mplayer").executions
        biggest = max(executions, key=lambda e: e.event_count)
        assert biggest.event_count > 4 * 512

        tracemalloc.start()
        try:
            for execution in executions:
                for _ in execution.iter_events():
                    pass
            _, peak_streaming = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            events = list(biggest.iter_events())
            _, peak_materialized = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert len(events) == biggest.event_count
        assert peak_streaming < peak_materialized

    def test_ten_x_scale_streams_with_flat_peak(self, tmp_path):
        """A 10x-scale pack streams with roughly the same peak as a
        1x-scale pack: memory is bounded by the chunk window, not the
        store size."""
        small = pack_generated(
            tmp_path / "small",
            scale=0.1,
            applications=("nedit",),
            chunk_rows=512,
        )
        big = pack_generated(
            tmp_path / "big",
            scale=1.0,
            applications=("nedit",),
            chunk_rows=512,
        )
        assert big.rows > 10 * small.rows

        def streaming_peak(store: TraceStore) -> int:
            tracemalloc.start()
            try:
                for execution in store.trace("nedit"):
                    for _ in execution.iter_events():
                        pass
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            return peak

        peak_small = streaming_peak(small)
        peak_big = streaming_peak(big)
        # >10x the data, peak within 3x (chunk-window bounded; the
        # in-memory equivalent would grow with the row count).
        assert peak_big < 3 * peak_small


class TestChunkBoundaries:
    """Chunk-window arithmetic at the edges (tiny chunk sizes).

    A `StoreBackedTrace` streams each execution through
    `windows_for`-cut chunk windows; an off-by-one at a chunk edge
    would drop or duplicate a row silently.  Degenerate chunk sizes
    (1-3 rows) put every execution boundary on or next to a chunk
    edge, so any window bug shows up as a stream diff.
    """

    def _pack(self, path, chunk_rows):
        trace = build_application_trace(
            application_spec("nedit"), scale=0.25
        )
        with StoreWriter(path, chunk_rows=chunk_rows) as writer:
            pack_trace(trace, writer)
        return trace, TraceStore(path)

    @pytest.mark.parametrize("chunk_rows", [1, 2, 3])
    def test_tiny_chunks_round_trip(self, tmp_path, chunk_rows):
        trace, store = self._pack(tmp_path / f"c{chunk_rows}", chunk_rows)
        stored = store.trace("nedit")
        for mem, st in zip(trace, stored):
            assert list(st.iter_events()) == mem.events

    def test_windows_exactly_tile_the_range(self, tmp_path):
        _, store = self._pack(tmp_path / "tile", 3)
        rows = store.rows
        assert rows > 3
        for start, stop in [
            (0, rows),          # whole store
            (0, 3),             # exactly one chunk
            (3, 6),             # chunk-aligned interior
            (2, 4),             # straddles one edge
            (3, 4),             # first row of a chunk
            (2, 3),             # last row of a chunk
            (rows - 1, rows),   # single final row
            (5, 5),             # empty
        ]:
            stop = min(stop, rows)
            windows = store.windows_for(start, stop)
            # windows tile [start, stop) exactly: contiguous, in order,
            # non-empty, each within one chunk.
            if start >= stop:
                assert windows == []
                continue
            assert windows[0][0] == start
            assert windows[-1][1] == stop
            for (_, a_end), (b_start, _) in zip(windows, windows[1:]):
                assert a_end == b_start
            for a, b in windows:
                assert a < b
                assert b - a <= store.chunk_rows
                assert a // store.chunk_rows == (b - 1) // store.chunk_rows

    def test_out_of_range_windows_raise(self, tmp_path):
        _, store = self._pack(tmp_path / "bounds", 3)
        rows = store.rows
        with pytest.raises(TraceStoreError, match="outside the store"):
            store.windows_for(0, rows + 1)
        with pytest.raises(TraceStoreError, match="outside the store"):
            store.windows_for(-1, rows)
        with pytest.raises(TraceStoreError, match="outside the store"):
            store.decode_rows(rows - 1, rows + 1)
        with pytest.raises(TraceStoreError, match="outside the store"):
            store.decode_rows(-2, 0)
        # In-range decodes at the exact edges still work.
        assert len(store.decode_rows(rows - 1, rows)) == 1
        assert store.decode_rows(0, 0) == []

    def test_simulation_identical_across_chunk_sizes(self, tmp_path):
        """Same workload, chunk sizes 1 and 1024: bit-identical runs."""
        results = []
        for chunk_rows in (1, 1024):
            _, store = self._pack(tmp_path / f"sim{chunk_rows}", chunk_rows)
            runner = ExperimentRunner(store.suite(), SimulationConfig())
            results.append(runner.run_global("nedit", "PCAP"))
        assert results[0] == results[1]
