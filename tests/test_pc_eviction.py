"""PC-based cache eviction extension (§7's "file buffer management")."""

import pytest

from repro.cache.page_cache import CacheConfig, PageCache
from repro.cache.pc_eviction import PCAwarePageCache, PCReusePredictor
from repro.errors import ConfigurationError

HOT_PC = 0x100   # library re-reads
COLD_PC = 0x200  # streaming content


def make_cache(blocks: int = 8, **kwargs) -> PCAwarePageCache:
    return PCAwarePageCache(
        CacheConfig(capacity_bytes=blocks * 4096, block_size=4096), **kwargs
    )


# --------------------------------------------------------------- predictor
def test_predictor_starts_optimistic():
    predictor = PCReusePredictor()
    assert predictor.predicts_reuse(0x42)


def test_predictor_learns_death():
    predictor = PCReusePredictor()
    predictor.record_death(0x42)
    assert not predictor.predicts_reuse(0x42)
    predictor.record_reuse(0x42)
    assert predictor.predicts_reuse(0x42)


def test_predictor_saturates():
    predictor = PCReusePredictor()
    for _ in range(10):
        predictor.record_death(0x1)
    predictor.record_reuse(0x1)
    predictor.record_reuse(0x1)
    assert predictor.predicts_reuse(0x1)


def test_predictor_validation():
    with pytest.raises(ConfigurationError):
        PCReusePredictor(threshold=5, maximum=3)


# ------------------------------------------------------------------ cache
def test_basic_hit_miss_behaviour_matches_lru_cache():
    cache = make_cache()
    missed, _ = cache.read(0.0, 1, [10], pc=HOT_PC)
    assert missed == [10]
    missed, _ = cache.read(0.1, 1, [10], pc=HOT_PC)
    assert missed == []
    assert cache.stats.read_hits == 1


def test_capacity_respected():
    cache = make_cache(blocks=4)
    for i in range(10):
        cache.read(0.1 * i, 1, [i], pc=COLD_PC)
    assert cache.resident_block_count <= 4


def test_dead_pc_blocks_evicted_before_hot_set():
    """Once COLD_PC is learned dead, its stream stops evicting the
    re-used working set."""
    cache = make_cache(blocks=8)
    # Teach the predictor: stream 30 never-reused blocks through.
    for i in range(30):
        cache.read(0.1 * i, 1, [1000 + i], pc=COLD_PC)
    assert not cache.predictor.predicts_reuse(COLD_PC)
    # Install a hot set and touch it (protected region).
    for block in (1, 2, 3):
        cache.read(10.0, 2, [block], pc=HOT_PC)
        cache.read(10.1, 2, [block], pc=HOT_PC)
    # Stream many more cold blocks.
    for i in range(40):
        cache.read(20.0 + 0.1 * i, 1, [5000 + i], pc=COLD_PC)
    # The hot set survived.
    missed, _ = cache.read(30.0, 2, [1, 2, 3], pc=HOT_PC)
    assert missed == []


def test_plain_lru_thrashes_in_the_same_scenario():
    """Contrast case: plain LRU loses the hot set to the stream."""
    cache = PageCache(CacheConfig(capacity_bytes=8 * 4096, block_size=4096))
    for block in (1, 2, 3):
        cache.read(10.0, 2, [block])
        cache.read(10.1, 2, [block])
    for i in range(40):
        cache.read(20.0 + 0.1 * i, 1, [5000 + i])
    missed, _ = cache.read(30.0, 2, [1, 2, 3])
    assert missed == [1, 2, 3]


def test_promotion_credits_loading_pc():
    cache = make_cache(blocks=8)
    for _ in range(4):  # demote COLD_PC
        for i in range(10):
            cache.read(0.1 * i, 1, [2000 + i], pc=COLD_PC)
    before = cache.predictor.predicts_reuse(COLD_PC)
    cache.read(50.0, 1, [7777], pc=COLD_PC)
    cache.read(50.1, 1, [7777], pc=COLD_PC)  # re-reference: promote
    assert cache.protected_block_count >= 1
    assert not before  # was dead before the reuse credit


def test_dirty_eviction_forces_writeback():
    cache = make_cache(blocks=2)
    cache.write(0.0, 1, [1], pid=7, pc=COLD_PC)
    forced = []
    for i in range(4):
        _, f = cache.read(0.1 * (i + 1), 1, [100 + i], pc=COLD_PC)
        forced.extend(f)
    assert any(w.block == 1 and w.pid == 7 for w in forced)


def test_flush_daemon_covers_both_regions():
    cache = make_cache(blocks=8)
    cache.write(0.0, 1, [1], pid=3, pc=HOT_PC)
    cache.read(0.1, 1, [1], pc=HOT_PC)  # promote the dirty block
    cache.write(0.2, 1, [2], pid=3, pc=COLD_PC)
    flushed = cache.advance(31.0)
    assert {w.block for w in flushed} == {1, 2}
    assert cache.dirty_block_count == 0


def test_filter_pipeline_accepts_pc_aware_cache(config):
    from repro.cache import filter_execution
    from repro.workloads import build_application

    execution = build_application("nedit", scale=0.1).executions[0]
    plain = filter_execution(execution, config.cache)
    pc_aware = filter_execution(
        execution, cache=PCAwarePageCache(config.cache)
    )
    # Same trace, both pipelines produce disk accesses; the PC-aware
    # cache never produces *more* misses than it has reads.
    assert pc_aware.cache_stats.read_misses <= (
        pc_aware.cache_stats.read_misses + pc_aware.cache_stats.read_hits
    )
    assert plain.accesses and pc_aware.accesses


def test_invalid_probation_fraction():
    with pytest.raises(ConfigurationError):
        make_cache(probation_fraction=0.0)
