"""ASCII stacked-bar chart rendering."""

from repro.analysis.ascii_charts import (
    accuracy_bar,
    energy_bar,
    render_accuracy_chart,
    render_energy_chart,
)
from repro.analysis.figures import AccuracyBar, EnergyBar


def test_accuracy_bar_width_and_marker():
    bar = accuracy_bar(0.5, 0.2, 0.3, 0.0, width=60)
    assert len(bar) == 61  # width + the 100% marker
    assert "|" in bar


def test_accuracy_bar_segments_in_order():
    bar = accuracy_bar(0.4, 0.2, 0.2, 0.2, width=50)
    cleaned = bar.replace("|", "").rstrip()
    # Glyph runs appear in the canonical order.
    order = [cleaned.index(g) for g in "#:.x"]
    assert order == sorted(order)


def test_accuracy_bar_clips_overflow():
    bar = accuracy_bar(1.0, 0.0, 0.0, 5.0, width=40)
    assert len(bar) == 41


def test_zero_bar_is_blank():
    bar = accuracy_bar(0.0, 0.0, 0.0, 0.0, width=30)
    assert set(bar) <= {" ", "|"}


def test_energy_bar_full_base():
    bar = energy_bar(0.02, 0.1, 0.85, 0.0, width=50)
    assert len(bar) == 50
    assert bar.count("L") > bar.count("s") > 0


def test_render_accuracy_chart():
    figure = {
        "app": {
            "PCAP": AccuracyBar(
                application="app", predictor="PCAP", hit=0.9, miss=0.1,
                not_predicted=0.1, hit_primary=0.7, hit_backup=0.2,
                miss_primary=0.05, miss_backup=0.05, opportunities=10,
            )
        }
    }
    text = render_accuracy_chart(figure, "Figure 7")
    assert "Figure 7" in text
    assert "PCAP" in text
    assert "#" in text


def test_render_energy_chart():
    figure = {
        "app": {
            "Base": EnergyBar(
                application="app", predictor="Base", busy=0.02,
                idle_short=0.1, idle_long=0.88, power_cycle=0.0,
                savings=0.0,
            )
        }
    }
    text = render_energy_chart(figure)
    assert "Base" in text
    assert "L" in text
    assert "0.0% saved" in text
