"""Integration: workload generation → cache → engine → analysis, on the
down-scaled suite."""

import pytest

from repro.analysis.figures import build_fig8
from repro.analysis.tables import build_table1, build_table3
from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner


@pytest.fixture(scope="module")
def runner(small_suite):
    return ExperimentRunner(small_suite, SimulationConfig())


def test_every_predictor_runs_on_every_application(runner):
    from repro.predictors.registry import KNOWN_PREDICTORS

    application = "nedit"  # smallest
    for name in KNOWN_PREDICTORS:
        result = runner.run_global(application, name)
        assert result.energy > 0
        assert result.stats.gaps > 0


def test_table1_magnitudes_scale_with_suite(runner):
    rows = {row.application: row for row in build_table1(runner)}
    # All six applications produce idle periods and disk traffic.
    for name, row in rows.items():
        assert row.global_idle_periods > 0, name
        assert row.local_idle_periods >= row.global_idle_periods, name
        assert row.disk_accesses > 0, name
        assert row.total_ios > row.disk_accesses, name  # cache absorbs I/O


def test_energy_sums_are_consistent(runner):
    fig8 = build_fig8(runner, predictors=("Base", "TP"),
                      applications=("xemacs",))
    base = fig8["xemacs"]["Base"]
    tp = fig8["xemacs"]["TP"]
    assert base.total == pytest.approx(1.0)
    # TP's components plus its savings account for the base energy.
    assert tp.total + tp.savings == pytest.approx(1.0, abs=1e-9)


def test_table3_variant_ordering(runner):
    rows = build_table3(
        runner, variants=("PCAP", "PCAPfh"),
        applications=("mozilla", "nedit"),
    )
    for row in rows:
        # Extended keys can only fragment (grow) the table.
        assert row.entries["PCAPfh"] >= row.entries["PCAP"]


def test_oracle_dominates_every_online_predictor(runner):
    for application in ("mozilla", "nedit", "mplayer"):
        ideal = runner.run_global(application, "Ideal").energy
        for name in ("TP", "LT", "PCAP", "PCAPfh"):
            online = runner.run_global(application, name).energy
            assert ideal <= online + 1e-6, (application, name)


def test_base_is_near_worst_policy(runner):
    """Managed policies beat (or at worst marginally exceed) Base.

    A mispredicted shutdown consumes more energy than it saves (§2), so
    on this sparse down-scaled suite a timeout predictor can land a few
    points above Base; at full scale every policy wins clearly (see the
    Figure 8 benchmark)."""
    for application in ("writer", "impress"):
        base = runner.run_global(application, "Base").energy
        for name in ("Ideal", "TP", "PCAP"):
            assert runner.run_global(application, name).energy <= base * 1.05


def test_global_opportunities_do_not_depend_on_predictor(runner):
    counts = {
        name: runner.run_global("xemacs", name).stats.opportunities
        for name in ("Base", "TP", "LT", "PCAP")
    }
    assert len(set(counts.values())) == 1, counts


def test_mplayer_trailing_drain_is_learned(runner):
    """The buffer-drain idle period at movie end must eventually be
    predicted by the primary PCAP (the trailing-gap training path)."""
    result = runner.run_global("mplayer", "PCAP")
    assert result.stats.hits_primary > 0
