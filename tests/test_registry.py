"""Predictor registry and spec invariants."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.predictors.registry import (
    KNOWN_PREDICTORS,
    PredictorSpec,
    lt_spec,
    make_spec,
    pcap_spec,
    tp_spec,
)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


def test_every_known_predictor_builds(config):
    for name in KNOWN_PREDICTORS:
        spec = make_spec(name, config)
        assert spec.name  # all specs carry a report name


def test_unknown_predictor_rejected(config):
    with pytest.raises(ConfigurationError):
        make_spec("bogus", config)


def test_spec_requires_exactly_one_mechanism():
    with pytest.raises(ConfigurationError):
        PredictorSpec(name="broken")


def test_omniscient_specs_flagged(config):
    assert make_spec("Ideal", config).is_omniscient
    assert make_spec("Base", config).is_omniscient
    assert not make_spec("PCAP", config).is_omniscient


def test_local_specs_produce_independent_predictors(config):
    spec = make_spec("PCAP", config)
    a = spec.local_factory(1)
    b = spec.local_factory(2)
    assert a is not b
    assert a.table is b.table  # shared application table


def test_specs_are_fresh_per_call(config):
    first = make_spec("PCAP", config)
    second = make_spec("PCAP", config)
    assert first.local_factory(1).table is not second.local_factory(1).table


def test_pcap_spec_inherits_config_parameters(config):
    spec = pcap_spec(config)
    local = spec.local_factory(1)
    assert local.wait_window == config.wait_window
    assert local.backup_timeout == config.timeout


def test_lt_spec_names(config):
    assert lt_spec(config).name == "LT"
    assert lt_spec(config, reuse_tree=False).name == "LTa"


def test_tp_be_uses_breakeven_timer(config):
    spec = make_spec("TP-BE", config)
    local = spec.local_factory(1)
    assert local.timeout == pytest.approx(config.breakeven)
    assert spec.name == "TP-BE"


def test_tp_custom_timeout_named(config):
    spec = tp_spec(config, timeout=3.0)
    assert "3.00" in spec.name


def test_table_size_exposed_for_trainable_predictors(config):
    assert make_spec("PCAP", config).table_size == 0
    assert make_spec("LT", config).table_size == 0
    assert make_spec("TP", config).table_size is None


def test_execution_end_hook_applies_reuse_policy(config):
    spec = make_spec("PCAPa", config)
    local = spec.local_factory(1)
    local.table.train(42)
    assert spec.table_size == 1
    spec.on_execution_end()
    assert spec.table_size == 0
