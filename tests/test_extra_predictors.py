"""PB (previous-busy) and ST (stochastic timeout) predictors."""

import pytest

from repro.config import SimulationConfig
from repro.disk.power_model import fujitsu_mhf2043at
from repro.errors import ConfigurationError
from repro.predictors.base import IdleClass, IdleFeedback, PredictorSource
from repro.predictors.previous_busy import PreviousBusyPredictor
from repro.predictors.registry import make_spec
from repro.predictors.stochastic import StochasticTimeoutPredictor
from repro.sim.engine import evaluate_local_stream
from tests.helpers import access, accesses_at

PARAMS = fujitsu_mhf2043at()


# ----------------------------------------------------------------- PB
def test_pb_predicts_after_short_burst():
    pb = PreviousBusyPredictor(busy_threshold=2.0)
    intent = pb.on_access(access(0.0))
    assert intent.source == PredictorSource.PRIMARY
    assert intent.predicts_shutdown


def test_pb_holds_back_after_long_burst():
    pb = PreviousBusyPredictor(busy_threshold=2.0)
    pb.on_access(access(0.0))
    pb.on_access(access(1.0))
    intent = pb.on_access(access(2.5))  # burst span 2.5 >= threshold
    assert not intent.predicts_shutdown


def test_pb_burst_resets_on_visible_idle():
    pb = PreviousBusyPredictor(busy_threshold=2.0)
    pb.on_access(access(0.0))
    pb.on_access(access(2.5))
    pb.on_idle_end(IdleFeedback(2.6, 10.0, IdleClass.LONG))
    intent = pb.on_access(access(10.0))  # new burst: span 0
    assert intent.predicts_shutdown


def test_pb_sub_window_gap_keeps_burst_open():
    pb = PreviousBusyPredictor(busy_threshold=2.0)
    pb.on_access(access(0.0))
    pb.on_idle_end(IdleFeedback(0.1, 0.5, IdleClass.SUB_WINDOW))
    intent = pb.on_access(access(2.5))
    assert not intent.predicts_shutdown  # still the same long burst


def test_pb_validation():
    with pytest.raises(ConfigurationError):
        PreviousBusyPredictor(busy_threshold=0.0)


# ----------------------------------------------------------------- ST
def _feed(st, lengths):
    for length in lengths:
        st.on_idle_end(IdleFeedback(0.0, length, IdleClass.LONG))


def test_st_starts_at_breakeven():
    st = StochasticTimeoutPredictor(PARAMS)
    assert st.timeout == pytest.approx(PARAMS.breakeven_time())


def test_st_long_idle_history_shrinks_timeout():
    st = StochasticTimeoutPredictor(PARAMS, reoptimize_every=1)
    _feed(st, [120.0] * 16)
    # All periods long: the optimal policy shuts down immediately-ish.
    assert st.timeout < 1.0


def test_st_short_idle_history_disables_shutdowns():
    st = StochasticTimeoutPredictor(PARAMS, reoptimize_every=1)
    _feed(st, [2.0] * 16)
    # All periods below breakeven: the armed timeout is at least as long
    # as every observed period, so a shutdown never actually fires (the
    # engine fires only when the timer expires strictly inside the gap).
    assert st.timeout >= 2.0


def test_st_expected_energy_matches_hand_computation():
    st = StochasticTimeoutPredictor(PARAMS, reoptimize_every=10**9)
    _feed(st, [10.0])
    tau = 4.0
    expected = (
        PARAMS.idle_power * tau
        + PARAMS.cycle_energy
        + PARAMS.standby_power * (10.0 - tau - PARAMS.transition_time)
    )
    assert st.expected_energy(tau) == pytest.approx(expected)


def test_st_sample_thinning_bounds_memory():
    st = StochasticTimeoutPredictor(PARAMS, max_samples=16,
                                    reoptimize_every=10**9)
    _feed(st, [float(i + 1) for i in range(64)])
    assert len(st._samples) <= 16


def test_st_validation():
    with pytest.raises(ConfigurationError):
        StochasticTimeoutPredictor(PARAMS, max_samples=0)


# ------------------------------------------------------------ end-to-end
@pytest.mark.parametrize("name", ["PB", "ST"])
def test_new_predictors_run_through_engine(name):
    config = SimulationConfig()
    spec = make_spec(name, config)
    stream = accesses_at([0.0, 0.2, 0.4, 30.0, 30.2, 70.0])
    stats = evaluate_local_stream(
        stream, spec.local_factory(1), config, start_time=0.0,
        end_time=120.0,
    )
    assert stats.gaps >= 3
    assert stats.hits + stats.misses == stats.shutdowns
