"""Fault injection and the resilient executor (repro.faults,
repro.sim.resilience).

The contracts under test:

* fault plans are deterministic — worker faults select on cell identity
  and attempt number, never scheduling order;
* on the all-success path the resilient executor is bit-identical to
  :func:`repro.sim.parallel.execute_cells` (serial and pooled);
* injected crashes, hangs, and failures are retried under the policy,
  terminal failures become :class:`CellFailure` records instead of
  aborting the run, and repeated pool incidents degrade gracefully to
  in-process execution;
* the checkpoint journal restores completed cells so a rerun executes
  only unfinished work, and tolerates a torn tail.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.config import SimulationConfig
from repro.errors import ExecutionError, FaultPlanError
from repro.faults import FaultPlan, FaultSpec, parse_fault_plan
from repro.predictors.registry import tp_spec
from repro.sim import resilience as resilience_module
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import (
    CellProgress,
    ExperimentCell,
    ParallelExperimentRunner,
    execute_cells,
    fork_available,
    stderr_progress,
)
from repro.errors import CheckpointError
from repro.sim.resilience import (
    CellCheckpoint,
    CellFailure,
    ResiliencePolicy,
    cell_key,
    raise_on_failures,
    run_cells,
)
from repro.sim.sweep import sweep

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="pool path needs the fork start method"
)

#: Fast policy shared by the retry tests.
QUICK = ResiliencePolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.clear()
    yield
    faults.clear()


def toy_cells(n: int) -> list[ExperimentCell]:
    return [
        ExperimentCell(index=i, application=f"app{i}", predictor="TP")
        for i in range(n)
    ]


def toy_runner(cell: ExperimentCell) -> int:
    return cell.index * 10


# ---------------------------------------------------------------------------
# Fault-plan parsing and matching
# ---------------------------------------------------------------------------


def test_parse_fault_plan_full_grammar():
    plan = parse_fault_plan(
        "worker.crash,cell=3,attempts=99; worker.hang,cell=7,seconds=15;"
        "cache.corrupt-read,at=2,count=3; worker.fail,app=mozilla; seed=7"
    )
    assert plan.seed == 7
    crash, hang, corrupt, fail = plan.specs
    assert (crash.site, crash.cell, crash.attempts) == ("worker.crash", 3, 99)
    assert (hang.cell, hang.seconds) == (7, 15.0)
    assert (corrupt.at, corrupt.count) == (2, 3)
    assert fail.application == "mozilla"
    assert plan.specs_for("worker.hang") == (hang,)
    assert plan.specs_for("persist.os-error") == ()


@pytest.mark.parametrize("text", [
    "bogus.site",
    "worker.crash,cell=three",
    "worker.crash,cellthree",
    "worker.crash,unknown=1",
    "seed=x",
    "seed=1,cell=2",
])
def test_parse_fault_plan_rejects_malformed(text):
    with pytest.raises(FaultPlanError):
        parse_fault_plan(text)


def test_fault_spec_validation():
    with pytest.raises(FaultPlanError):
        FaultSpec(site="worker.hang", seconds=0.0)
    with pytest.raises(FaultPlanError):
        FaultSpec(site="cache.corrupt-read", at=0)


def test_worker_site_matches_cell_and_attempt_not_order():
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=2, attempts=2)])
    # Any invocation order gives the same answer: pure function of
    # (cell, attempt) for attempt-scoped sites.
    assert plan.match("worker.fail", cell=1, attempt=1) is None
    assert plan.match("worker.fail", cell=2, attempt=3) is None
    assert plan.match("worker.fail", cell=2, attempt=2) is not None
    assert plan.match("worker.fail", cell=2, attempt=1) is not None
    assert len(plan.fired) == 2


def test_counter_site_fires_in_its_window():
    plan = FaultPlan([FaultSpec(site="cache.corrupt-read", at=2, count=2)])
    fired = [
        plan.match("cache.corrupt-read") is not None for _ in range(5)
    ]
    assert fired == [False, True, True, False, False]
    assert [r.invocation for r in plan.fired] == [2, 3]


def test_injected_context_manager_installs_and_clears():
    plan = FaultPlan([])
    with faults.injected(plan):
        assert faults.active() is plan
    assert faults.active() is None


def test_plan_from_env(monkeypatch):
    monkeypatch.delenv(faults.FAULT_PLAN_ENV_VAR, raising=False)
    assert faults.plan_from_env() is None
    monkeypatch.setenv(faults.FAULT_PLAN_ENV_VAR, "worker.fail,cell=1")
    plan = faults.plan_from_env()
    assert plan is not None and plan.specs[0].cell == 1


# ---------------------------------------------------------------------------
# Policy and backoff
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(max_attempts=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(cell_timeout=-1.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(degrade_after=0)


def test_backoff_deterministic_capped_and_growing():
    policy = ResiliencePolicy(base_delay=0.1, max_delay=0.5, jitter=0.25,
                              seed=3)
    again = ResiliencePolicy(base_delay=0.1, max_delay=0.5, jitter=0.25,
                             seed=3)
    delays = [policy.backoff(4, attempt) for attempt in (2, 3, 4, 9)]
    assert delays == [again.backoff(4, attempt) for attempt in (2, 3, 4, 9)]
    # Exponential under the cap, jitter-stretched by at most 25 %.
    assert 0.1 <= delays[0] <= 0.125
    assert 0.2 <= delays[1] <= 0.25
    assert delays[3] <= 0.5 * 1.25
    # A different seed or cell reshuffles the jitter.
    other = ResiliencePolicy(base_delay=0.1, max_delay=0.5, jitter=0.25,
                             seed=4)
    assert other.backoff(4, 2) != delays[0]
    assert policy.backoff(5, 2) != delays[0]


# ---------------------------------------------------------------------------
# Success-path equivalence with execute_cells
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, pytest.param(3, marks=needs_fork)])
def test_run_cells_matches_execute_cells_on_success(jobs):
    cells = toy_cells(7)
    plain = execute_cells(cells, toy_runner, jobs=jobs)
    ledger = run_cells(cells, toy_runner, jobs=jobs, policy=QUICK)
    assert not ledger.failures and not ledger.retries
    assert not ledger.degraded
    assert [(r.cell, r.result) for r in ledger.results] == [
        (r.cell, r.result) for r in plain
    ]


@needs_fork
def test_resilient_matrix_bit_identical_to_plain(small_suite):
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    apps = ("mozilla", "xemacs")
    plain = runner.run_matrix(["TP"], applications=apps, jobs=1)
    report = runner.run_matrix_resilient(
        ["TP"], applications=apps, jobs=2, policy=QUICK
    )
    assert report.complete
    assert report.matrix == plain


def test_run_cells_empty():
    ledger = run_cells([], toy_runner, jobs=4)
    assert ledger.outcomes == [] and ledger.results == []


# ---------------------------------------------------------------------------
# Retries, terminal failures, crashes, timeouts
# ---------------------------------------------------------------------------


def test_transient_fault_retried_to_success():
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=2, attempts=1)])
    with faults.injected(plan):
        ledger = run_cells(toy_cells(4), toy_runner, jobs=1, policy=QUICK)
    assert not ledger.failures
    assert [e.cell.index for e in ledger.retries] == [2]
    assert ledger.retries[0].kind == "error"
    assert "InjectedFault" in ledger.retries[0].message
    assert [r.result for r in ledger.results] == [0, 10, 20, 30]


def test_terminal_failure_reports_partial_results():
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=1, attempts=99)])
    with faults.injected(plan):
        ledger = run_cells(toy_cells(3), toy_runner, jobs=1, policy=QUICK)
    (failure,) = ledger.failures
    assert isinstance(failure, CellFailure)
    assert failure.cell.index == 1
    assert len(failure.attempts) == QUICK.max_attempts
    assert failure.last.kind == "error"
    assert [r.cell.index for r in ledger.results] == [0, 2]
    rendered = ledger.render()
    assert "FAILED after 3 attempt(s)" in rendered
    with pytest.raises(ExecutionError, match="1 failed"):
        raise_on_failures(ledger, "test run")


def test_raise_on_failures_quiet_when_clean():
    ledger = run_cells(toy_cells(2), toy_runner, jobs=1)
    raise_on_failures(ledger, "test run")  # must not raise


@needs_fork
def test_worker_crash_is_terminal_with_retry_history():
    plan = FaultPlan([FaultSpec(site="worker.crash", cell=1, attempts=99)])
    policy = ResiliencePolicy(max_attempts=2, base_delay=0.001)
    with faults.injected(plan):
        ledger = run_cells(toy_cells(4), toy_runner, jobs=2, policy=policy)
    (failure,) = ledger.failures
    assert failure.cell.index == 1
    assert [e.kind for e in failure.attempts] == ["crash", "crash"]
    assert str(faults.CRASH_EXIT_CODE) in failure.last.message
    assert [r.result for r in ledger.results] == [0, 20, 30]


@needs_fork
def test_crashed_attempt_recovers_when_transient():
    plan = FaultPlan([FaultSpec(site="worker.crash", cell=0, attempts=1)])
    with faults.injected(plan):
        ledger = run_cells(toy_cells(2), toy_runner, jobs=2, policy=QUICK)
    assert not ledger.failures
    assert [e.kind for e in ledger.retries] == ["crash"]
    assert [r.result for r in ledger.results] == [0, 10]


@needs_fork
def test_hung_worker_killed_and_retried():
    plan = FaultPlan([FaultSpec(site="worker.hang", cell=1, seconds=30.0)])
    policy = ResiliencePolicy(
        max_attempts=2, cell_timeout=0.5, base_delay=0.001
    )
    with faults.injected(plan):
        ledger = run_cells(toy_cells(3), toy_runner, jobs=2, policy=policy)
    assert not ledger.failures
    assert [e.kind for e in ledger.retries] == ["timeout"]
    assert ledger.retries[0].cell.index == 1
    assert [r.result for r in ledger.results] == [0, 10, 20]


@needs_fork
def test_pool_degrades_to_in_process_after_repeated_crashes():
    # Unscoped crash: every pool attempt of every cell dies.  Because
    # the fault only fires inside real worker processes, degradation to
    # in-process execution is exactly what rescues the run.
    plan = FaultPlan([FaultSpec(site="worker.crash", attempts=99)])
    policy = ResiliencePolicy(
        max_attempts=4, base_delay=0.001, degrade_after=2
    )
    with faults.injected(plan):
        ledger = run_cells(toy_cells(4), toy_runner, jobs=2, policy=policy)
    assert ledger.degraded
    assert not ledger.failures
    assert [r.result for r in ledger.results] == [0, 10, 20, 30]
    assert all(e.kind == "crash" for e in ledger.retries)


# ---------------------------------------------------------------------------
# Fork-unavailable platforms: the in-process path (satellite S4)
# ---------------------------------------------------------------------------


def test_serial_path_honours_timeout_and_retries(monkeypatch):
    monkeypatch.setattr(resilience_module, "fork_available", lambda: False)
    plan = FaultPlan([FaultSpec(site="worker.hang", cell=0, seconds=5.0)])
    policy = ResiliencePolicy(
        max_attempts=2, cell_timeout=0.2, base_delay=0.001
    )
    with faults.injected(plan):
        ledger = run_cells(toy_cells(2), toy_runner, jobs=4, policy=policy)
    assert not ledger.failures
    assert [e.kind for e in ledger.retries] == ["timeout"]
    assert "abandoned" in ledger.retries[0].message
    assert [r.result for r in ledger.results] == [0, 10]


def test_serial_path_retries_injected_failures(monkeypatch):
    monkeypatch.setattr(resilience_module, "fork_available", lambda: False)
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=1, attempts=2)])
    with faults.injected(plan):
        ledger = run_cells(toy_cells(2), toy_runner, jobs=8, policy=QUICK)
    assert not ledger.failures
    assert [e.attempt for e in ledger.retries] == [1, 2]
    assert [r.result for r in ledger.results] == [0, 10]


def test_in_process_timeout_skipped_when_unlimited():
    calls = []

    def runner(cell):
        calls.append(cell.index)
        return cell.index

    ledger = run_cells(
        toy_cells(2), runner, jobs=1,
        policy=ResiliencePolicy(cell_timeout=None),
    )
    assert calls == [0, 1]
    assert not ledger.retries


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


def test_checkpoint_resume_skips_completed_cells(tmp_path):
    path = tmp_path / "run.ckpt"
    cells = toy_cells(5)
    keys = [f"key-{c.index}" for c in cells]
    calls: list[int] = []

    def counting(cell):
        calls.append(cell.index)
        return cell.index * 10

    first = run_cells(cells, counting, jobs=1, checkpoint=path,
                      cell_keys=keys)
    assert not first.failures and first.resumed == 0
    assert calls == [0, 1, 2, 3, 4]

    calls.clear()
    second = run_cells(cells, counting, jobs=1, checkpoint=path,
                       cell_keys=keys)
    assert calls == []  # every cell restored from the journal
    assert second.resumed == 5
    assert [(r.cell, r.result) for r in second.results] == [
        (r.cell, r.result) for r in first.results
    ]


def test_resume_reruns_only_unfinished_cells(tmp_path):
    path = tmp_path / "run.ckpt"
    cells = toy_cells(4)
    keys = [f"key-{c.index}" for c in cells]
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=2, attempts=99)])
    policy = ResiliencePolicy(max_attempts=1)
    with faults.injected(plan):
        first = run_cells(cells, toy_runner, jobs=1, policy=policy,
                          checkpoint=path, cell_keys=keys)
    assert [f.cell.index for f in first.failures] == [2]

    # The failed cell was never journalled; a fault-free rerun executes
    # exactly that one cell and completes the suite.
    calls: list[int] = []

    def counting(cell):
        calls.append(cell.index)
        return cell.index * 10

    second = run_cells(cells, counting, jobs=1, checkpoint=path,
                       cell_keys=keys)
    assert calls == [2]
    assert second.resumed == 3
    assert not second.failures
    assert [r.result for r in second.results] == [0, 10, 20, 30]


def test_checkpoint_tolerates_torn_tail(tmp_path):
    path = tmp_path / "run.ckpt"
    cells = toy_cells(3)
    keys = [f"key-{c.index}" for c in cells]
    run_cells(cells, toy_runner, jobs=1, checkpoint=path, cell_keys=keys)
    # Simulate a crash mid-append: a torn half-record at the tail.
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"type": "cell", "key": "key-torn", "resu')
    with pytest.warns(RuntimeWarning, match="torn partial record"):
        restored = CellCheckpoint(path)
    assert restored.skipped_lines == 1
    assert restored.loaded == 3
    assert restored.get("key-1") is not None
    assert restored.get("key-torn") is None


def test_checkpoint_appends_cleanly_after_torn_tail(tmp_path):
    """The crash window: resuming over a torn tail must not let the next
    append concatenate onto the partial line and corrupt both records."""
    path = tmp_path / "run.ckpt"
    cell = ExperimentCell(index=0, application="alpha", predictor="TP")
    with CellCheckpoint(path) as checkpoint:
        checkpoint.record("k0", cell, {"energy": 1.0}, 0.1)
        checkpoint.record("k1", cell, {"energy": 2.0}, 0.2)
    intact = path.read_bytes()
    # Tear the final record mid-line, then resume and append a new one.
    path.write_bytes(intact[:-20])
    with pytest.warns(RuntimeWarning, match="torn partial record"):
        with CellCheckpoint(path) as resumed:
            assert resumed.loaded == 1
            resumed.record("k2", cell, {"energy": 3.0}, 0.3)
    # The torn bytes are gone and the new record starts on its own line.
    reloaded = CellCheckpoint(path)
    assert reloaded.skipped_lines == 0
    assert reloaded.get("k0") == ({"energy": 1.0}, 0.1)
    assert reloaded.get("k1") is None
    assert reloaded.get("k2") == ({"energy": 3.0}, 0.3)


def test_checkpoint_repairs_missing_final_newline(tmp_path):
    path = tmp_path / "run.ckpt"
    cell = ExperimentCell(index=0, application="alpha", predictor="TP")
    with CellCheckpoint(path) as checkpoint:
        checkpoint.record("k0", cell, {"energy": 1.0}, 0.1)
    # Crash between the record bytes and its newline: record intact.
    path.write_bytes(path.read_bytes().rstrip(b"\n"))
    with CellCheckpoint(path) as resumed:
        assert resumed.loaded == 1
        resumed.record("k1", cell, {"energy": 2.0}, 0.2)
    reloaded = CellCheckpoint(path)
    assert reloaded.skipped_lines == 0
    assert reloaded.get("k0") == ({"energy": 1.0}, 0.1)
    assert reloaded.get("k1") == ({"energy": 2.0}, 0.2)


def test_checkpoint_records_survive_reload(tmp_path):
    path = tmp_path / "cells.ckpt"
    cell = ExperimentCell(index=0, application="alpha", predictor="TP")
    with CellCheckpoint(path) as checkpoint:
        checkpoint.record("k0", cell, {"energy": 1.5}, 0.25)
    restored = CellCheckpoint(path)
    result, wall = restored.get("k0")
    assert result == {"energy": 1.5} and wall == 0.25
    record = json.loads(path.read_text().splitlines()[0])
    assert record["application"] == "alpha"
    assert record["format"] == resilience_module.CHECKPOINT_FORMAT


def test_checkpoint_requires_keys():
    with pytest.raises(ValueError, match="cell_keys"):
        run_cells(toy_cells(2), toy_runner, checkpoint="unused.ckpt")
    with pytest.raises(ValueError, match="length"):
        run_cells(toy_cells(2), toy_runner, cell_keys=["only-one"])


def test_cell_key_varies_with_every_input():
    config = SimulationConfig()
    base = cell_key("f" * 40, "PCAP", config)
    assert base == cell_key("f" * 40, "PCAP", config)
    assert base != cell_key("e" * 40, "PCAP", config)
    assert base != cell_key("f" * 40, "TP", config)
    assert base != cell_key("f" * 40, "PCAP", config, mode="local")
    assert base != cell_key("f" * 40, "PCAP", config, multistate=True)
    other = SimulationConfig(wait_window=3.0)
    assert base != cell_key("f" * 40, "PCAP", other)


# ---------------------------------------------------------------------------
# Progress surfacing (satellite S3)
# ---------------------------------------------------------------------------


def test_progress_events_surface_retries():
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=1, attempts=1)])
    events: list[CellProgress] = []
    with faults.injected(plan):
        run_cells(toy_cells(2), toy_runner, jobs=1, policy=QUICK,
                  progress=events.append)
    flat = [(e.cell.index, e.attempt, e.outcome) for e in events]
    assert flat == [(0, 1, "ok"), (1, 1, "retry"), (1, 2, "ok")]


def test_progress_events_surface_resume(tmp_path):
    path = tmp_path / "run.ckpt"
    cells = toy_cells(2)
    keys = ["a", "b"]
    run_cells(cells, toy_runner, jobs=1, checkpoint=path, cell_keys=keys)
    events: list[CellProgress] = []
    run_cells(cells, toy_runner, jobs=1, checkpoint=path, cell_keys=keys,
              progress=events.append)
    assert [(e.outcome, e.attempt) for e in events] == [
        ("resumed", 0), ("resumed", 0)
    ]


def test_stderr_progress_annotates_recovery(capsys):
    cell = ExperimentCell(index=0, application="mozilla", predictor="TP")
    stderr_progress(CellProgress(cell, 0.5, 1, 4, attempt=2,
                                 outcome="retry"))
    stderr_progress(CellProgress(cell, 0.5, 2, 4, attempt=3,
                                 outcome="failed", degraded=True))
    stderr_progress(CellProgress(cell, 0.0, 3, 4, attempt=0,
                                 outcome="resumed"))
    err = capsys.readouterr().err
    assert "[attempt 2] RETRYING" in err
    assert "[attempt 3] FAILED" in err
    assert "[degraded: in-process]" in err
    assert "(resumed from checkpoint)" in err


# ---------------------------------------------------------------------------
# Integration: suite runs, sweeps, and the acceptance chaos scenario
# ---------------------------------------------------------------------------


APPS = ("mozilla", "xemacs")


def test_run_suite_checkpoint_roundtrip(small_suite, tmp_path):
    path = tmp_path / "suite.ckpt"
    runner = ExperimentRunner(small_suite, SimulationConfig())
    first = runner.run_suite("TP", applications=APPS, checkpoint=path)
    size = path.stat().st_size
    second = runner.run_suite("TP", applications=APPS, checkpoint=path)
    assert second == first
    # The resumed run journalled nothing new.
    assert path.stat().st_size == size
    plain = runner.run_suite("TP", applications=APPS)
    assert plain == first


def test_sweep_checkpoint_resumes(small_suite, tmp_path):
    path = tmp_path / "sweep.ckpt"
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    make = lambda t, cfg: tp_spec(cfg, timeout=t)  # noqa: E731
    first = sweep(runner, (2.0, 5.0), make_spec=make,
                  applications=("mozilla",), checkpoint=path)
    size = path.stat().st_size
    second = sweep(runner, (2.0, 5.0), make_spec=make,
                   applications=("mozilla",), checkpoint=path)
    assert second == first
    assert path.stat().st_size == size
    plain = sweep(runner, (2.0, 5.0), make_spec=make,
                  applications=("mozilla",))
    assert plain == first


def test_run_suite_resilience_reports_failures(small_suite):
    runner = ExperimentRunner(small_suite, SimulationConfig())
    plan = FaultPlan([FaultSpec(site="worker.fail", cell=0, attempts=99)])
    policy = ResiliencePolicy(max_attempts=2, base_delay=0.001)
    with faults.injected(plan):
        with pytest.raises(ExecutionError, match="suite run"):
            runner.run_suite("TP", applications=APPS, resilience=policy)


def test_chaos_scenario_partial_suite_bit_identical(small_suite):
    """The acceptance shape: under injected faults the run completes,
    the poisoned cell is a terminal CellFailure with retry history, and
    every healthy cell is bit-identical to a fault-free serial run."""
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    predictors = ["TP", "PCAP"]
    baseline = runner.run_matrix(predictors, applications=APPS, jobs=1)
    plan = FaultPlan([
        FaultSpec(site="worker.fail", cell=1, attempts=99),
        FaultSpec(site="worker.fail", cell=2, attempts=1),
    ])
    policy = ResiliencePolicy(max_attempts=2, base_delay=0.001)
    with faults.injected(plan):
        report = runner.run_matrix_resilient(
            predictors, applications=APPS, jobs=1, policy=policy
        )
    (failure,) = report.ledger.failures
    assert failure.cell.index == 1
    assert len(failure.attempts) == 2
    assert not report.complete
    # Cell 2 recovered after its transient fault; cell 1 is absent.
    healthy = 0
    for application, row in report.matrix.items():
        for name, result in row.items():
            assert result == baseline[application][name]
            healthy += 1
    assert healthy == len(APPS) * len(predictors) - 1


# ---------------------------------------------------------------------------
# Checkpoint provenance (fused flag / variant set / mode)
# ---------------------------------------------------------------------------
#
# Fused journals store one whole variant-lane list per cell; classic
# journals store one predictor per cell.  Resuming one with the other —
# or a fused journal with a different lane list — used to serve entries
# of the wrong shape silently.  A provenance header now pins the
# journal to its writer's execution strategy.


def test_provenance_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "prov.ckpt"
    cells = toy_cells(2)
    keys = [f"key-{c.index}" for c in cells]
    run_cells(cells, toy_runner, jobs=1, checkpoint=path, cell_keys=keys,
              provenance={"fused": True, "variant_set": "abc"})
    with pytest.raises(CheckpointError, match="incompatible run"):
        run_cells(cells, toy_runner, jobs=1, checkpoint=path,
                  cell_keys=keys,
                  provenance={"fused": False, "variant_set": "abc"})
    with pytest.raises(CheckpointError, match="variant_set"):
        run_cells(cells, toy_runner, jobs=1, checkpoint=path,
                  cell_keys=keys,
                  provenance={"fused": True, "variant_set": "other"})


def test_provenance_match_resumes(tmp_path):
    path = tmp_path / "prov-ok.ckpt"
    cells = toy_cells(3)
    keys = [f"key-{c.index}" for c in cells]
    stamp = {"fused": True, "mode": "global", "variant_set": "abc"}
    calls: list[int] = []

    def counting(cell):
        calls.append(cell.index)
        return cell.index

    run_cells(cells, counting, jobs=1, checkpoint=path, cell_keys=keys,
              provenance=stamp)
    calls.clear()
    second = run_cells(cells, counting, jobs=1, checkpoint=path,
                       cell_keys=keys, provenance=dict(stamp))
    assert calls == []
    assert second.resumed == 3


def test_provenance_compares_only_shared_keys(tmp_path):
    # A journal written before a new provenance key existed must stay
    # resumable: only keys present in BOTH stamps are compared.
    path = tmp_path / "prov-subset.ckpt"
    cells = toy_cells(1)
    run_cells(cells, toy_runner, jobs=1, checkpoint=path,
              cell_keys=["k0"], provenance={"fused": False})
    ledger = run_cells(
        cells, toy_runner, jobs=1, checkpoint=path, cell_keys=["k0"],
        provenance={"fused": False, "mode": "global", "multistate": False},
    )
    assert ledger.resumed == 1


def test_legacy_headerless_journal_resumes(tmp_path):
    # Journals from before the provenance header carry no stamp at all;
    # they resume under any provenance (cell keys still guard entries).
    path = tmp_path / "legacy.ckpt"
    cells = toy_cells(2)
    keys = [f"key-{c.index}" for c in cells]
    run_cells(cells, toy_runner, jobs=1, checkpoint=path, cell_keys=keys)
    restored = CellCheckpoint(path)
    assert restored.provenance is None
    ledger = run_cells(cells, toy_runner, jobs=1, checkpoint=path,
                       cell_keys=keys,
                       provenance={"fused": True, "variant_set": "abc"})
    assert ledger.resumed == 2


def test_fused_journal_refuses_classic_resume(small_suite, tmp_path):
    # End-to-end through run_matrix_resilient: a --fused checkpoint
    # resumed by a --no-fused run (or vice versa) fails loudly instead
    # of mixing per-lane-list entries with per-predictor entries.
    path = tmp_path / "fused.ckpt"
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    runner.run_matrix_resilient(["TP", "Base"], applications=APPS,
                                fused=True, checkpoint=path)
    with pytest.raises(CheckpointError, match="incompatible run"):
        runner.run_matrix_resilient(["TP", "Base"], applications=APPS,
                                    fused=False, checkpoint=path)
    # A fused resume over a *different* lane list is a different
    # variant set — also refused.
    with pytest.raises(CheckpointError, match="variant_set"):
        runner.run_matrix_resilient(["TP", "PCAP"], applications=APPS,
                                    fused=True, checkpoint=path)
    # The matching fused resume restores every cell.
    report = runner.run_matrix_resilient(["TP", "Base"], applications=APPS,
                                         fused=True, checkpoint=path)
    assert report.ledger.resumed == len(APPS)


def test_classic_journal_allows_new_predictors(small_suite, tmp_path):
    # The documented classic workflow — add a predictor, resume, only
    # the new cells run — must keep working: classic provenance pins
    # the execution shape, not the predictor list.
    path = tmp_path / "classic.ckpt"
    runner = ParallelExperimentRunner(small_suite, SimulationConfig())
    runner.run_matrix_resilient(["TP"], applications=APPS,
                                fused=False, checkpoint=path)
    report = runner.run_matrix_resilient(["TP", "Base"], applications=APPS,
                                         fused=False, checkpoint=path)
    assert report.ledger.resumed == len(APPS)  # the TP cells
    assert not report.ledger.failures
