"""SimulationConfig validation and derived quantities."""

import pytest

from repro.cache.page_cache import CacheConfig
from repro.config import SimulationConfig, paper_config
from repro.errors import ConfigurationError


def test_paper_defaults():
    config = paper_config()
    assert config.wait_window == 1.0
    assert config.timeout == 10.0
    assert config.cache.capacity_bytes == 256 * 1024
    assert config.cache.flush_interval == 30.0
    assert config.breakeven == pytest.approx(5.43, abs=0.03)


def test_access_duration_scales_with_blocks():
    config = SimulationConfig()
    assert config.access_duration(0) == pytest.approx(config.service_time)
    assert config.access_duration(10) > config.access_duration(1)


def test_wait_window_must_stay_below_breakeven():
    with pytest.raises(ConfigurationError):
        SimulationConfig(wait_window=6.0)


def test_nonpositive_timeout_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(timeout=0.0)


def test_negative_service_time_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(service_time=-0.1)


def test_custom_cache_config_carried():
    cache = CacheConfig(capacity_bytes=1024 * 1024)
    config = SimulationConfig(cache=cache)
    assert config.cache.capacity_blocks == 256


def test_config_is_immutable():
    config = SimulationConfig()
    with pytest.raises(Exception):
        config.timeout = 5.0
