"""SimulationConfig validation and derived quantities."""

import pytest

from repro.cache.page_cache import CacheConfig
from repro.config import SimulationConfig, paper_config
from repro.errors import ConfigurationError


def test_paper_defaults():
    config = paper_config()
    assert config.wait_window == 1.0
    assert config.timeout == 10.0
    assert config.cache.capacity_bytes == 256 * 1024
    assert config.cache.flush_interval == 30.0
    assert config.breakeven == pytest.approx(5.43, abs=0.03)


def test_access_duration_scales_with_blocks():
    config = SimulationConfig()
    assert config.access_duration(0) == pytest.approx(config.service_time)
    assert config.access_duration(10) > config.access_duration(1)


def test_wait_window_must_stay_below_breakeven():
    with pytest.raises(ConfigurationError):
        SimulationConfig(wait_window=6.0)


def test_nonpositive_timeout_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(timeout=0.0)


def test_negative_service_time_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(service_time=-0.1)


def test_custom_cache_config_carried():
    cache = CacheConfig(capacity_bytes=1024 * 1024)
    config = SimulationConfig(cache=cache)
    assert config.cache.capacity_blocks == 256


def test_config_is_immutable():
    config = SimulationConfig()
    with pytest.raises(Exception):
        config.timeout = 5.0


# --- environment-variable resolution (REPRO_JOBS / REPRO_FUSED) ------------
#
# Malformed values used to fall back silently (not-a-number meant
# "serial", a typo like REPRO_FUSED=ture meant "classic path"), which
# turned configuration mistakes into wrong execution strategies without
# a word.  Both resolvers now raise ConfigurationError with the
# offending value spelled out.


def test_default_jobs_strict_env(monkeypatch):
    from repro.config import JOBS_ENV_VAR, default_jobs

    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert default_jobs() == 1

    monkeypatch.setenv(JOBS_ENV_VAR, "")
    assert default_jobs() == 1  # empty is "unset", not an error

    monkeypatch.setenv(JOBS_ENV_VAR, " 4 ")
    assert default_jobs() == 4  # surrounding whitespace tolerated

    monkeypatch.setenv(JOBS_ENV_VAR, "0")
    assert default_jobs() >= 1  # 0 = all cores (CI relies on this)

    monkeypatch.setenv(JOBS_ENV_VAR, "abc")
    with pytest.raises(ConfigurationError, match="REPRO_JOBS='abc'"):
        default_jobs()

    monkeypatch.setenv(JOBS_ENV_VAR, "2.5")
    with pytest.raises(ConfigurationError):
        default_jobs()

    monkeypatch.setenv(JOBS_ENV_VAR, "-1")
    with pytest.raises(ConfigurationError, match="negative"):
        default_jobs()


def test_default_fused_strict_env(monkeypatch):
    from repro.config import FUSED_ENV_VAR, default_fused

    monkeypatch.delenv(FUSED_ENV_VAR, raising=False)
    assert default_fused() is False

    for raw in ("1", "true", "YES", "On"):
        monkeypatch.setenv(FUSED_ENV_VAR, raw)
        assert default_fused() is True, raw

    for raw in ("0", "false", "NO", "off", ""):
        monkeypatch.setenv(FUSED_ENV_VAR, raw)
        assert default_fused() is False, raw

    monkeypatch.setenv(FUSED_ENV_VAR, "ture")
    with pytest.raises(ConfigurationError, match="REPRO_FUSED='ture'"):
        default_fused()


def test_resolve_fused_explicit_beats_env(monkeypatch):
    from repro.config import FUSED_ENV_VAR, resolve_fused

    monkeypatch.setenv(FUSED_ENV_VAR, "garbage")
    assert resolve_fused(True) is True  # explicit skips the environment
    assert resolve_fused(False) is False
    with pytest.raises(ConfigurationError):
        resolve_fused(None)  # None defers to the (malformed) env
