"""ExecutionTrace / ApplicationTrace containers and validation."""

import pytest

from repro.errors import TraceError
from repro.traces.events import ExitEvent, ForkEvent
from repro.traces.trace import ApplicationTrace, ExecutionTrace, merge_events
from tests.helpers import io_event


def _simple_execution():
    events = [
        ForkEvent(time=0.1, pid=101, parent_pid=100),
        io_event(0.2, pid=100),
        io_event(0.3, pid=101),
        ExitEvent(time=0.4, pid=101),
        io_event(0.5, pid=100),
        ExitEvent(time=0.6, pid=100),
    ]
    return ExecutionTrace(
        application="app",
        execution_index=0,
        events=events,
        initial_pids=frozenset({100}),
    )


def test_validate_accepts_wellformed_trace():
    _simple_execution().validate()


def test_validate_rejects_out_of_order_events():
    execution = _simple_execution()
    execution.events.reverse()
    with pytest.raises(TraceError):
        execution.validate()


def test_validate_rejects_io_from_unknown_pid():
    execution = ExecutionTrace(
        "app", 0, [io_event(0.1, pid=999)], initial_pids=frozenset({100})
    )
    with pytest.raises(TraceError):
        execution.validate()


def test_validate_rejects_io_after_exit():
    events = [
        ExitEvent(time=0.1, pid=100),
        io_event(0.2, pid=100),
    ]
    execution = ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100})
    )
    with pytest.raises(TraceError):
        execution.validate()


def test_validate_rejects_fork_from_dead_parent():
    events = [ForkEvent(time=0.1, pid=101, parent_pid=55)]
    execution = ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100})
    )
    with pytest.raises(TraceError):
        execution.validate()


def test_validate_rejects_duplicate_fork():
    events = [
        ForkEvent(time=0.1, pid=101, parent_pid=100),
        ForkEvent(time=0.2, pid=101, parent_pid=100),
    ]
    execution = ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100})
    )
    with pytest.raises(TraceError):
        execution.validate()


def test_sorted_returns_canonical_order():
    execution = _simple_execution()
    shuffled = ExecutionTrace(
        "app",
        0,
        list(reversed(execution.events)),
        initial_pids=frozenset({100}),
    )
    assert shuffled.sorted().events == execution.events


def test_pids_includes_initial_and_forked():
    assert _simple_execution().pids == {100, 101}


def test_per_process_io_groups_by_pid():
    grouped = _simple_execution().per_process_io()
    assert [e.time for e in grouped[100]] == [0.2, 0.5]
    assert [e.time for e in grouped[101]] == [0.3]


def test_lifetimes():
    lifetimes = _simple_execution().lifetimes()
    assert lifetimes[101] == (0.1, 0.4)
    assert lifetimes[100] == (0.1, 0.6)  # initial pid starts at trace start


def test_start_and_end_time():
    execution = _simple_execution()
    assert execution.start_time == 0.1
    assert execution.end_time == 0.6


def test_application_trace_rejects_foreign_execution():
    execution = _simple_execution()
    with pytest.raises(TraceError):
        ApplicationTrace(application="other", executions=[execution])
    trace = ApplicationTrace(application="other")
    with pytest.raises(TraceError):
        trace.append(execution)


def test_application_trace_total_io_count():
    trace = ApplicationTrace("app", [_simple_execution()])
    assert trace.total_io_count == 3
    assert len(trace) == 1


def test_merge_events_sorts_across_streams():
    a = [io_event(0.3), io_event(0.9)]
    b = [io_event(0.1), io_event(0.5)]
    merged = merge_events([a, b])
    assert [e.time for e in merged] == [0.1, 0.3, 0.5, 0.9]
