"""The parallel execution layer (repro.sim.parallel).

The load-bearing property is determinism: a parallel run must be
*bit-identical* to the serial run, because the reducer folds cell
results in stable index order either way.  These tests exercise that
equivalence end-to-end with a real process pool (jobs=2), plus the
supporting contracts — result dataclasses survive pickling, ``jobs=1``
never spawns a pool, and ``resolve_jobs`` honours ``REPRO_JOBS``.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time

import pytest

from repro.config import JOBS_ENV_VAR, SimulationConfig, default_jobs
from repro.errors import ConfigurationError
from repro.predictors.registry import tp_spec
from repro.sim import parallel as parallel_module
from repro.sim.experiment import ExperimentRunner
from repro.sim.parallel import (
    CellProgress,
    ExperimentCell,
    ParallelExperimentRunner,
    execute_cells,
    fork_available,
    resolve_jobs,
    stderr_progress,
)
from repro.sim.sweep import sweep

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel layer needs the fork start method"
)

APPS = ("mozilla", "xemacs")
TIMEOUTS = (2.0, 10.0)


@pytest.fixture(scope="module")
def parallel_runner(small_suite):
    return ParallelExperimentRunner(small_suite, SimulationConfig())


# ---------------------------------------------------------------------------
# Serial vs parallel equivalence
# ---------------------------------------------------------------------------


def test_run_matrix_parallel_matches_serial(parallel_runner):
    predictors = ["TP", "PCAP"]
    serial = parallel_runner.run_matrix(
        predictors, applications=APPS, jobs=1
    )
    threaded = parallel_runner.run_matrix(
        predictors, applications=APPS, jobs=2
    )
    # ApplicationResult is a (frozen) dataclass tree of floats/ints, so
    # == here is exact — bit-identical, not approximately equal.
    assert serial == threaded
    assert list(serial) == list(threaded) == list(APPS)


def test_run_suite_parallel_matches_serial(parallel_runner):
    serial = parallel_runner.run_suite("PCAP", applications=APPS, jobs=1)
    threaded = parallel_runner.run_suite("PCAP", applications=APPS, jobs=2)
    assert serial == threaded


def test_sweep_parallel_matches_serial(parallel_runner):
    make = lambda t, cfg: tp_spec(cfg, timeout=t)
    serial = sweep(
        parallel_runner, TIMEOUTS, make_spec=make, applications=APPS, jobs=1
    )
    threaded = sweep(
        parallel_runner, TIMEOUTS, make_spec=make, applications=APPS, jobs=2
    )
    assert serial == threaded


def test_parallel_matches_plain_serial_runner(small_suite):
    """ParallelExperimentRunner(jobs=2) equals a plain ExperimentRunner."""
    serial_runner = ExperimentRunner(small_suite, SimulationConfig())
    expected = {
        app: serial_runner.run_global(app, "PCAP") for app in APPS
    }
    threaded = ParallelExperimentRunner(
        small_suite, SimulationConfig(), jobs=2
    )
    assert threaded.run_suite("PCAP", applications=APPS) == expected


# ---------------------------------------------------------------------------
# Pickling (cells and results must cross the process boundary)
# ---------------------------------------------------------------------------


def test_cell_and_result_dataclasses_pickle(parallel_runner):
    cell = ExperimentCell(index=3, application="mozilla", predictor="PCAP")
    assert pickle.loads(pickle.dumps(cell)) == cell

    result = parallel_runner.run_global("mozilla", "PCAP")
    restored = pickle.loads(pickle.dumps(result))
    assert restored == result
    assert restored.energy == result.energy
    assert restored.stats == result.stats


def test_sweep_point_pickles(parallel_runner):
    (point,) = sweep(
        parallel_runner,
        [5.0],
        make_spec=lambda t, cfg: tp_spec(cfg, timeout=t),
        applications=APPS,
    )
    assert pickle.loads(pickle.dumps(point)) == point


# ---------------------------------------------------------------------------
# jobs resolution and the serial fast path
# ---------------------------------------------------------------------------


def test_jobs_one_never_spawns_a_pool(parallel_runner, monkeypatch):
    def explode(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("jobs=1 must not create a process pool")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", explode
    )
    monkeypatch.setattr(
        parallel_module, "ProcessPoolExecutor", explode
    )
    results = parallel_runner.run_suite("TP", applications=APPS, jobs=1)
    assert set(results) == set(APPS)


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert default_jobs() == 1
    assert resolve_jobs(None) == 1  # serial unless opted in

    monkeypatch.setenv(JOBS_ENV_VAR, "3")
    assert resolve_jobs(None) == 3

    monkeypatch.setenv(JOBS_ENV_VAR, "0")  # 0 = all cores
    assert resolve_jobs(None) >= 1

    monkeypatch.setenv(JOBS_ENV_VAR, "not-a-number")
    with pytest.raises(ConfigurationError):
        resolve_jobs(None)

    monkeypatch.setenv(JOBS_ENV_VAR, "not-a-number")
    assert resolve_jobs(4) == 4  # explicit beats the environment
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(-2) >= 1  # programmatic negatives mean all cores


def test_execute_cells_empty():
    assert execute_cells([], lambda cell: None, jobs=4) == []


def test_worker_exception_cleans_up_pool_state(tmp_path):
    """A failing cell must propagate without leaking the module-global
    runner or leaving queued cells running (fail-fast but clean)."""

    def run_cell(cell: ExperimentCell) -> int:
        if cell.index == 0:
            raise RuntimeError("poisoned cell")
        time.sleep(0.05)
        (tmp_path / f"ran-{cell.index}").touch()
        return cell.index

    cells = [
        ExperimentCell(index=i, application=f"app{i}", predictor="TP")
        for i in range(32)
    ]
    with pytest.raises(RuntimeError, match="poisoned cell"):
        execute_cells(cells, run_cell, jobs=2)
    # The inherited-closure global is always cleared...
    assert parallel_module._WORKER_RUN_CELL is None
    # ...and the pending tail was cancelled, not drained: with 32 slow
    # cells and 2 workers, a full drain would have run nearly all of
    # them after the poisoned cell failed.
    assert len(list(tmp_path.glob("ran-*"))) < len(cells) - 1


# ---------------------------------------------------------------------------
# Progress reporting
# ---------------------------------------------------------------------------


def test_progress_hook_fires_per_cell(parallel_runner):
    events: list[CellProgress] = []
    runner = ParallelExperimentRunner(
        parallel_runner.suite,
        SimulationConfig(),
        jobs=2,
        progress=events.append,
    )
    runner.run_suite("TP", applications=APPS)
    assert len(events) == len(APPS)
    assert {event.cell.application for event in events} == set(APPS)
    assert sorted(event.completed for event in events) == [1, 2]
    assert all(event.total == len(APPS) for event in events)
    assert all(event.wall_time >= 0.0 for event in events)


def test_stderr_progress_formats(capsys):
    cell = ExperimentCell(index=0, application="mozilla", predictor="TP")
    stderr_progress(CellProgress(cell, wall_time=0.5, completed=1, total=4))
    captured = capsys.readouterr()
    assert "[1/4] mozilla × TP" in captured.err
