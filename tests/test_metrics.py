"""PredictionStats: the hit/miss/not-predicted accounting of §6.1."""

import pytest

from repro.errors import SimulationError
from repro.predictors.base import PredictorSource
from repro.sim.metrics import PredictionStats

BE = 5.445
PRIMARY = PredictorSource.PRIMARY
BACKUP = PredictorSource.BACKUP


def test_opportunity_counting():
    stats = PredictionStats()
    stats.record_gap(3.0, None, None, BE)
    stats.record_gap(10.0, None, None, BE)
    assert stats.gaps == 2
    assert stats.opportunities == 1
    assert stats.not_predicted == 1


def test_hit_requires_off_window_beyond_breakeven():
    stats = PredictionStats()
    stats.record_gap(20.0, 1.0, PRIMARY, BE)  # off 19 > BE -> hit
    assert stats.hits_primary == 1
    assert stats.misses == 0


def test_late_shutdown_in_long_gap_is_miss():
    """A 10 s timer firing in a 12 s period leaves a 2 s off-window —
    energy lost, counted as a miss even though the period was long."""
    stats = PredictionStats()
    stats.record_gap(12.0, 10.0, PRIMARY, BE)
    assert stats.misses_primary == 1
    assert stats.unsaved_in_opportunity == 1
    assert stats.not_predicted == 0  # the opportunity was acted on


def test_shutdown_in_short_gap_is_miss():
    stats = PredictionStats()
    stats.record_gap(3.0, 1.0, PRIMARY, BE)
    assert stats.misses == 1
    assert stats.unsaved_in_opportunity == 0
    assert stats.opportunities == 0


def test_fractions_normalized_to_opportunities():
    stats = PredictionStats()
    stats.record_gap(20.0, 1.0, PRIMARY, BE)   # hit
    stats.record_gap(30.0, None, None, BE)     # not predicted
    stats.record_gap(3.0, 1.0, BACKUP, BE)     # miss (short gap)
    assert stats.hit_fraction == pytest.approx(0.5)
    assert stats.not_predicted_fraction == pytest.approx(0.5)
    assert stats.miss_fraction == pytest.approx(0.5)  # can stack over 100%


def test_source_attribution():
    stats = PredictionStats()
    stats.record_gap(20.0, 1.0, PRIMARY, BE)
    stats.record_gap(25.0, 10.0, BACKUP, BE)
    assert stats.hit_primary_fraction == pytest.approx(0.5)
    assert stats.hit_backup_fraction == pytest.approx(0.5)


def test_zero_opportunities_fractions_are_zero():
    stats = PredictionStats()
    assert stats.hit_fraction == 0.0
    assert stats.miss_fraction == 0.0


def test_merge():
    a = PredictionStats()
    a.record_gap(20.0, 1.0, PRIMARY, BE)
    b = PredictionStats()
    b.record_gap(30.0, None, None, BE)
    b.record_gap(2.0, 0.5, BACKUP, BE)
    a.merge(b)
    assert a.gaps == 3
    assert a.opportunities == 2
    assert a.hits == 1
    assert a.misses == 1


def test_merged_classmethod():
    parts = []
    for _ in range(3):
        s = PredictionStats()
        s.record_gap(20.0, 1.0, PRIMARY, BE)
        parts.append(s)
    total = PredictionStats.merged(parts)
    assert total.hits_primary == 3


def test_idle_seconds_accumulate():
    stats = PredictionStats()
    stats.record_gap(2.0, None, None, BE)
    stats.record_gap(8.0, None, None, BE)
    assert stats.idle_seconds == pytest.approx(10.0)


def test_protocol_violations_rejected():
    stats = PredictionStats()
    with pytest.raises(SimulationError):
        stats.record_gap(-1.0, None, None, BE)
    with pytest.raises(SimulationError):
        stats.record_gap(10.0, 1.0, None, BE)  # shutdown without source
    with pytest.raises(SimulationError):
        stats.record_gap(10.0, 11.0, PRIMARY, BE)  # shutdown after gap end


def test_boundary_shutdown_offset_within_epsilon_tolerated():
    """Regression: the engine resolves offsets with EPSILON tolerance,
    so an offset landing within float noise of the gap end must be
    accounted (as a zero-off-window miss), not raise."""
    stats = PredictionStats()
    stats.record_gap(10.0, 10.0 + 5e-10, BACKUP, BE)
    assert stats.misses_backup == 1


def test_shutdown_clearly_after_gap_still_raises():
    stats = PredictionStats()
    with pytest.raises(SimulationError):
        stats.record_gap(10.0, 10.1, BACKUP, BE)


def test_hit_boundary_is_epsilon_consistent():
    """An off-window within EPSILON of breakeven is not a hit (it saved
    no energy), matching the disk ledger's classification."""
    stats = PredictionStats()
    stats.record_gap(BE + 1.0, 1.0 - 5e-10, PRIMARY, BE)
    assert stats.misses_primary == 1
    stats.record_gap(BE + 1.0, 0.5, PRIMARY, BE)
    assert stats.hits_primary == 1
