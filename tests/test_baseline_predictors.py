"""Baseline predictors: TP, oracle, always-on, EXP, AT."""

import pytest

from repro.errors import ConfigurationError
from repro.predictors.adaptive_timeout import AdaptiveTimeoutPredictor
from repro.predictors.always_on import AlwaysOnPolicy, AlwaysOnPredictor
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    PredictorSource,
    ShutdownIntent,
    classify_gap,
)
from repro.predictors.exponential_average import ExponentialAveragePredictor
from repro.predictors.oracle import OraclePolicy
from repro.predictors.timeout import PAPER_TIMEOUT, TimeoutPredictor
from tests.helpers import access

BE = 5.445


# ---------------------------------------------------------------- classify
def test_classify_gap_taxonomy():
    assert classify_gap(0.5, 1.0, BE) == IdleClass.SUB_WINDOW
    assert classify_gap(1.0, 1.0, BE) == IdleClass.SUB_WINDOW  # boundary
    assert classify_gap(3.0, 1.0, BE) == IdleClass.SHORT
    assert classify_gap(BE, 1.0, BE) == IdleClass.SHORT  # boundary
    assert classify_gap(10.0, 1.0, BE) == IdleClass.LONG


def test_shutdown_intent_rejects_negative_delay():
    with pytest.raises(ValueError):
        ShutdownIntent(delay=-1.0)


# ---------------------------------------------------------------- timeout
def test_tp_always_arms_its_timer():
    tp = TimeoutPredictor(10.0)
    intent = tp.on_access(access(5.0))
    assert intent.delay == 10.0
    assert intent.source == PredictorSource.PRIMARY
    assert tp.initial_intent(0.0).delay == 10.0


def test_tp_paper_default():
    assert TimeoutPredictor().timeout == PAPER_TIMEOUT == 10.0


def test_tp_rejects_nonpositive_timeout():
    with pytest.raises(ConfigurationError):
        TimeoutPredictor(0.0)


# ---------------------------------------------------------------- oracle
def test_oracle_shuts_down_exactly_on_long_gaps():
    oracle = OraclePolicy(BE)
    assert oracle.shutdown_offset(BE + 0.1) == 0.0
    assert oracle.shutdown_offset(BE) is None
    assert oracle.shutdown_offset(1.0) is None


def test_oracle_rejects_bad_breakeven():
    with pytest.raises(ConfigurationError):
        OraclePolicy(0.0)


# ---------------------------------------------------------------- base
def test_always_on_never_predicts():
    predictor = AlwaysOnPredictor()
    assert not predictor.on_access(access(0.0)).predicts_shutdown
    policy = AlwaysOnPolicy()
    assert policy.shutdown_offset(1e9) is None


# ---------------------------------------------------------------- EXP
def test_exp_predicts_after_long_history():
    exp = ExponentialAveragePredictor(BE, alpha=0.5)
    exp.on_idle_end(IdleFeedback(0.0, 100.0, IdleClass.LONG))
    intent = exp.on_access(access(100.0))
    assert intent.predicts_shutdown
    assert intent.source == PredictorSource.PRIMARY


def test_exp_stays_quiet_after_short_history():
    exp = ExponentialAveragePredictor(BE, alpha=0.5)
    for start in (0.0, 10.0, 20.0):
        exp.on_idle_end(IdleFeedback(start, start + 0.5, IdleClass.SUB_WINDOW))
    assert not exp.on_access(access(30.0)).predicts_shutdown


def test_exp_update_rule_is_weighted_average():
    exp = ExponentialAveragePredictor(BE, alpha=0.25, initial_prediction=8.0)
    exp.on_idle_end(IdleFeedback(0.0, 4.0, IdleClass.SHORT))
    assert exp.predicted_idle == pytest.approx(0.25 * 4.0 + 0.75 * 8.0)


def test_exp_rejects_bad_alpha():
    with pytest.raises(ConfigurationError):
        ExponentialAveragePredictor(BE, alpha=0.0)
    with pytest.raises(ConfigurationError):
        ExponentialAveragePredictor(BE, alpha=1.5)


# ---------------------------------------------------------------- AT
def test_at_correct_shutdown_shrinks_timeout():
    at = AdaptiveTimeoutPredictor(BE, initial_timeout=10.0)
    at.on_access(access(0.0))
    at.on_idle_end(IdleFeedback(0.0, 30.0, IdleClass.LONG))  # off=20 > BE
    assert at.timeout == pytest.approx(5.0)


def test_at_wasteful_shutdown_grows_timeout():
    at = AdaptiveTimeoutPredictor(BE, initial_timeout=10.0)
    at.on_access(access(0.0))
    at.on_idle_end(IdleFeedback(0.0, 12.0, IdleClass.LONG))  # off=2 < BE
    assert at.timeout == pytest.approx(20.0)


def test_at_missed_opportunity_shrinks_timeout():
    at = AdaptiveTimeoutPredictor(BE, initial_timeout=10.0)
    at.on_access(access(0.0))
    at.on_idle_end(IdleFeedback(0.0, 8.0, IdleClass.LONG))  # timer slept
    assert at.timeout == pytest.approx(5.0)


def test_at_short_period_leaves_timeout_alone():
    at = AdaptiveTimeoutPredictor(BE, initial_timeout=10.0)
    at.on_access(access(0.0))
    at.on_idle_end(IdleFeedback(0.0, 2.0, IdleClass.SHORT))
    assert at.timeout == pytest.approx(10.0)


def test_at_clamps_to_bounds():
    at = AdaptiveTimeoutPredictor(
        BE, initial_timeout=2.0, min_timeout=1.0, max_timeout=4.0
    )
    for _ in range(5):
        at.on_access(access(0.0))
        at.on_idle_end(IdleFeedback(0.0, 100.0, IdleClass.LONG))
    assert at.timeout == 1.0
    for _ in range(5):
        at.on_access(access(0.0))
        at.on_idle_end(IdleFeedback(0.0, at.timeout + 1.0, IdleClass.LONG))
    assert at.timeout == 4.0


def test_at_uses_armed_timeout_not_current():
    """Feedback must evaluate the timeout that was armed when the idle
    period began, not the already-adjusted value."""
    at = AdaptiveTimeoutPredictor(BE, initial_timeout=10.0)
    intent = at.on_access(access(0.0))
    assert intent.delay == 10.0
    at.on_idle_end(IdleFeedback(0.0, 30.0, IdleClass.LONG))
    intent = at.on_access(access(30.0))
    assert intent.delay == pytest.approx(5.0)


def test_at_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        AdaptiveTimeoutPredictor(BE, initial_timeout=0.5, min_timeout=1.0)
    with pytest.raises(ConfigurationError):
        AdaptiveTimeoutPredictor(BE, decrease_factor=1.5)
