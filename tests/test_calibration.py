"""Suite calibration reporting."""

from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.workloads.calibration import (
    CalibrationRow,
    calibration_report,
    render_calibration,
)


def test_report_covers_every_suite_application(small_suite):
    runner = ExperimentRunner(small_suite, SimulationConfig())
    rows = calibration_report(runner)
    assert {row.application for row in rows} == set(small_suite)


def test_ratios_and_within():
    row = CalibrationRow(
        application="x", executions=10, paper_executions=10,
        global_idle=110, paper_global_idle=100,
        local_idle=300, paper_local_idle=200,
        total_ios=900, paper_total_ios=1000,
    )
    assert row.global_ratio == 1.1
    assert row.local_ratio == 1.5
    assert row.io_ratio == 0.9
    assert row.within(0.5, 1.7)
    assert not row.within(0.95, 1.05)


def test_render(small_suite):
    runner = ExperimentRunner(small_suite, SimulationConfig())
    text = render_calibration(calibration_report(runner))
    assert "mozilla" in text
    assert "ratios" in text


def test_nedit_exact_at_any_scale(small_suite):
    """nedit's one-idle-period-per-execution structure holds at every
    scale: global == local == executions."""
    runner = ExperimentRunner(small_suite, SimulationConfig())
    rows = {row.application: row for row in calibration_report(runner)}
    nedit = rows["nedit"]
    assert nedit.global_idle == nedit.local_idle == nedit.executions
