"""Columnar hot-path view: bit-identity with the scalar path + memos."""

from __future__ import annotations

import pickle

import numpy as np

from repro.cache.filter import filter_execution
from repro.config import SimulationConfig
from repro.sim.columnar import ColumnarAccesses
from repro.workloads import build_application
from tests.helpers import access, single_process_execution


def _stream():
    return [
        access(0.5, pid=100, pc=0x10, fd=3, block_count=1),
        access(2.0, pid=101, pc=0x20, fd=4, block_count=3),
        access(9.0, pid=100, pc=0x30, fd=3, block_count=2),
        access(40.0, pid=102, pc=0x40, fd=5, block_count=7),
        access(41.0, pid=101, pc=0x20, fd=4, block_count=1),
    ]


def test_columns_match_rows():
    rows = _stream()
    cols = ColumnarAccesses.from_accesses(rows)
    assert len(cols) == len(rows)
    assert cols.times.tolist() == [a.time for a in rows]
    assert cols.pids.tolist() == [a.pid for a in rows]
    assert cols.pcs.tolist() == [a.pc for a in rows]
    assert cols.fds.tolist() == [a.fd for a in rows]
    assert cols.block_counts.tolist() == [a.block_count for a in rows]


def test_durations_bit_identical_to_scalar_formula():
    config = SimulationConfig()
    rows = _stream()
    cols = ColumnarAccesses.from_accesses(rows)
    vectorized = cols.durations_list(config)
    scalar = [config.access_duration(a.block_count) for a in rows]
    # Bit-identity, not approximate equality: the vectorized path must
    # perform the exact same two IEEE-754 operations per element.
    assert all(v == s for v, s in zip(vectorized, scalar))
    assert [v.hex() for v in vectorized] == [s.hex() for s in scalar]


def test_durations_bit_identical_on_generated_workload():
    config = SimulationConfig()
    execution = build_application("nedit", scale=0.1).executions[0]
    filtered = filter_execution(execution, config.cache)
    cols = filtered.columnar()
    vectorized = cols.durations_list(config)
    assert [v.hex() for v in vectorized] == [
        config.access_duration(a.block_count).hex()
        for a in filtered.accesses
    ]
    assert cols.times_list() == filtered.access_times


def test_durations_memoized_per_config():
    cols = ColumnarAccesses.from_accesses(_stream())
    base = SimulationConfig()
    assert cols.durations_list(base) is cols.durations_list(base)
    slower = SimulationConfig(service_time=0.020)
    assert cols.durations_list(slower) is not cols.durations_list(base)
    assert cols.durations_list(slower)[0] != cols.durations_list(base)[0]


def test_per_process_indices_match_row_grouping():
    rows = _stream()
    cols = ColumnarAccesses.from_accesses(rows)
    groups = cols.per_process_indices()
    assert set(groups) == {100, 101, 102}
    for pid, indices in groups.items():
        # Stream order within each process, and the right rows.
        assert list(indices) == sorted(indices)
        assert [rows[i].pid for i in indices] == [pid] * len(indices)
    assert cols.per_process_indices() is groups  # memoized


def test_gap_lengths():
    cols = ColumnarAccesses.from_accesses(_stream())
    gaps = cols.gap_lengths(lead_in=0.0)
    assert gaps.tolist() == [0.5, 1.5, 7.0, 31.0, 1.0]
    empty = ColumnarAccesses.from_accesses([])
    assert empty.gap_lengths(lead_in=0.0).size == 0


# ----------------------------------------------- FilterResult memos --


def test_filter_result_memos_return_same_object():
    execution = single_process_execution(
        [(0.0, 0x10), (30.0, 0x20), (60.0, 0x10)], end_time=90.0
    )
    filtered = filter_execution(execution)
    # Regression guard: repeated access must hand back the *same*
    # objects, not rebuilt copies — replays lean on these memos.
    assert filtered.access_times is filtered.access_times
    assert filtered.per_process() is filtered.per_process()
    assert filtered.columnar() is filtered.columnar()


def test_filter_result_pickle_drops_memos_but_keeps_value():
    execution = single_process_execution(
        [(0.0, 0x10), (30.0, 0x20), (60.0, 0x10)], end_time=90.0
    )
    filtered = filter_execution(execution)
    filtered.columnar()
    filtered.per_process()
    _ = filtered.access_times
    clone = pickle.loads(pickle.dumps(filtered))
    assert clone == filtered
    assert clone._columnar is None and clone._per_process is None
    # Rebuilt memos agree with the originals.
    assert clone.access_times == filtered.access_times
    assert np.array_equal(clone.columnar().times, filtered.columnar().times)
