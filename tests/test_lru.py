"""Generic LRU mapping."""

import pytest

from repro.cache.lru import LRUMapping


def test_put_and_get():
    lru = LRUMapping(capacity=2)
    lru.put("a", 1)
    assert lru.get("a") == 1
    assert lru.get("b") is None


def test_eviction_order_is_least_recently_used():
    lru = LRUMapping(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    evicted = lru.put("c", 3)
    assert evicted == ("a", 1)
    assert "a" not in lru
    assert lru.evictions == 1


def test_get_refreshes_recency():
    lru = LRUMapping(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.get("a")
    evicted = lru.put("c", 3)
    assert evicted == ("b", 2)


def test_peek_does_not_refresh():
    lru = LRUMapping(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.peek("a")
    evicted = lru.put("c", 3)
    assert evicted == ("a", 1)


def test_update_existing_refreshes_without_eviction():
    lru = LRUMapping(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.put("a", 10) is None
    assert lru.get("a") == 10
    assert len(lru) == 2


def test_unbounded_never_evicts():
    lru = LRUMapping(capacity=None)
    for i in range(1000):
        assert lru.put(i, i) is None
    assert len(lru) == 1000


def test_pop():
    lru = LRUMapping()
    lru.put("a", 1)
    assert lru.pop("a") == 1
    assert lru.pop("a") is None


def test_lru_key_and_iteration_order():
    lru = LRUMapping(capacity=3)
    for key in "abc":
        lru.put(key, key)
    lru.get("a")
    assert lru.lru_key == "b"
    assert list(lru) == ["b", "c", "a"]


def test_items_snapshot():
    lru = LRUMapping()
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.items() == [("a", 1), ("b", 2)]


def test_clear():
    lru = LRUMapping()
    lru.put("a", 1)
    lru.clear()
    assert len(lru) == 0
    assert lru.lru_key is None


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        LRUMapping(capacity=0)
