"""Gap arithmetic in traces.stats and sim.idle_periods."""

import pytest

from repro.sim.idle_periods import count_opportunities, stream_gaps
from repro.traces.stats import (
    Gap,
    TraceSummary,
    access_gaps,
    count_gaps_longer_than,
)
from repro.traces.trace import ApplicationTrace, ExecutionTrace
from tests.helpers import io_event


def test_gap_length():
    assert Gap(1.0, 3.5).length == pytest.approx(2.5)


def test_gap_rejects_negative_span():
    with pytest.raises(ValueError):
        Gap(2.0, 1.0)


def test_access_gaps_basic():
    gaps = access_gaps([0.0, 1.0, 5.0], service_time=0.5)
    assert [(g.start, g.end) for g in gaps] == [(0.5, 1.0), (1.5, 5.0)]


def test_access_gaps_serializes_overlapping_requests():
    # Second request arrives while the first is still being served.
    gaps = access_gaps([0.0, 0.2, 5.0], service_time=0.5)
    assert len(gaps) == 1
    assert gaps[0].start == pytest.approx(1.0)  # 2 serialized services
    assert gaps[0].end == pytest.approx(5.0)


def test_access_gaps_with_stream_end():
    gaps = access_gaps([0.0], service_time=0.5, stream_end=10.0)
    assert [(g.start, g.end) for g in gaps] == [(0.5, 10.0)]


def test_access_gaps_empty_stream():
    assert access_gaps([], service_time=0.5, stream_end=10.0) == []


def test_count_gaps_longer_than():
    gaps = [Gap(0, 2), Gap(0, 5), Gap(0, 10)]
    assert count_gaps_longer_than(gaps, 4.0) == 2
    assert count_gaps_longer_than(gaps, 10.0) == 0


def test_stream_gaps_includes_leading_and_trailing():
    gaps = stream_gaps(
        [5.0, 6.0], 0.01, start_time=0.0, end_time=20.0
    )
    assert gaps[0].start == 0.0 and gaps[0].end == 5.0
    assert gaps[-1].end == 20.0
    assert len(gaps) == 3


def test_stream_gaps_rejects_inverted_window():
    with pytest.raises(ValueError):
        stream_gaps([], 0.01, start_time=5.0, end_time=1.0)


def test_count_opportunities(breakeven):
    times = [0.0, 2.0, 2.0 + breakeven + 1.0]
    count = count_opportunities(
        times, 0.01, breakeven, start_time=0.0, end_time=times[-1]
    )
    assert count == 1


def test_trace_summary():
    execution = ExecutionTrace(
        "app", 0, [io_event(0.1), io_event(0.2)],
        initial_pids=frozenset({100}),
    )
    trace = ApplicationTrace("app", [execution])
    summary = TraceSummary.of(trace)
    assert summary.executions == 1
    assert summary.total_io_events == 2
    assert summary.total_processes == 1
