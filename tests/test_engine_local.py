"""evaluate_local_stream: driving one predictor over one process."""

import pytest

from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.predictors.timeout import TimeoutPredictor
from repro.sim.engine import evaluate_local_stream
from tests.helpers import accesses_at


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


def test_timeout_hits_long_gap(config):
    accesses = accesses_at([0.0, 50.0])
    stats = evaluate_local_stream(
        accesses, TimeoutPredictor(10.0), config, start_time=0.0,
        end_time=50.0,
    )
    assert stats.hits_primary == 1
    assert stats.opportunities == 1


def test_timeout_sleeps_through_medium_gap(config):
    # Gap of 8 s: opportunity, but below the 10 s timer.
    accesses = accesses_at([0.0, 8.0])
    stats = evaluate_local_stream(
        accesses, TimeoutPredictor(10.0), config, start_time=0.0,
        end_time=8.0,
    )
    assert stats.opportunities == 1
    assert stats.shutdowns == 0
    assert stats.not_predicted == 1


def test_timeout_late_fire_is_miss(config):
    # Gap of 12 s: timer fires at 10 s, off-window 2 s < breakeven.
    accesses = accesses_at([0.0, 12.0])
    stats = evaluate_local_stream(
        accesses, TimeoutPredictor(10.0), config, start_time=0.0,
        end_time=12.0,
    )
    assert stats.misses_primary == 1


def test_leading_gap_counts(config):
    accesses = accesses_at([50.0])
    stats = evaluate_local_stream(
        accesses, TimeoutPredictor(10.0), config, start_time=0.0,
        end_time=50.0,
    )
    assert stats.opportunities == 1
    assert stats.hits_primary == 1


def test_trailing_gap_counts(config):
    accesses = accesses_at([0.0])
    stats = evaluate_local_stream(
        accesses, TimeoutPredictor(10.0), config, start_time=0.0,
        end_time=100.0,
    )
    assert stats.opportunities == 1
    assert stats.hits_primary == 1


def test_empty_stream_has_leading_gap_only(config):
    stats = evaluate_local_stream(
        [], TimeoutPredictor(10.0), config, start_time=0.0, end_time=60.0
    )
    assert stats.gaps == 1
    assert stats.hits_primary == 1  # initial intent covers it


def test_pcap_trains_and_predicts_across_stream(config):
    spec = make_spec("PCAP", config)
    predictor = spec.local_factory(1)
    # Three bursts with the same single PC separated by long gaps:
    # first gap trains (backup TP hits), later gaps hit via PCAP.
    accesses = accesses_at([0.0, 50.0, 100.0, 150.0], pc=0xAA)
    stats = evaluate_local_stream(
        accesses, predictor, config, start_time=0.0, end_time=200.0
    )
    assert stats.opportunities == 4
    assert stats.hits_backup >= 1
    assert stats.hits_primary >= 2
    assert stats.misses == 0


def test_trailing_gap_trains_for_next_execution(config):
    spec = make_spec("PCAP", config)
    # Execution 1: single access then a long trailing gap.
    stats1 = evaluate_local_stream(
        accesses_at([0.0], pc=0xBB), spec.local_factory(1), config,
        start_time=0.0, end_time=60.0,
    )
    spec.on_execution_end()
    assert stats1.hits_primary == 0
    # Execution 2: same pattern now predicted by the primary.
    stats2 = evaluate_local_stream(
        accesses_at([0.0], pc=0xBB), spec.local_factory(1), config,
        start_time=0.0, end_time=60.0,
    )
    assert stats2.hits_primary == 1


def test_inverted_window_rejected(config):
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        evaluate_local_stream(
            [], TimeoutPredictor(), config, start_time=10.0, end_time=0.0
        )


def test_wait_window_cancellation(config):
    """A matched PCAP prediction followed by I/O inside the wait-window
    must not produce a shutdown (no miss recorded)."""
    spec = make_spec("PCAP", config)
    predictor = spec.local_factory(1)
    # Train: PC 0xCC before a long gap.
    evaluate_local_stream(
        accesses_at([0.0], pc=0xCC), predictor, config,
        start_time=0.0, end_time=30.0,
    )
    # Re-drive with an access 0.5 s (inside the window) after the match.
    predictor2 = spec.local_factory(1)
    stats = evaluate_local_stream(
        accesses_at([0.0, 0.5, 40.0], pc=0xCC), predictor2, config,
        start_time=0.0, end_time=41.0,
    )
    assert stats.misses == 0
