"""Property tests: trace serialization round-trips arbitrary traces."""

from io import StringIO

from hypothesis import given
from hypothesis import strategies as st

from repro.traces.events import AccessType, ExitEvent, ForkEvent, IOEvent
from repro.traces.io_format import read_executions, write_execution
from repro.traces.trace import ExecutionTrace

times = st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)

io_events = st.builds(
    IOEvent,
    time=times,
    pid=st.integers(min_value=1, max_value=10**6),
    pc=st.integers(min_value=0, max_value=2**32 - 1),
    fd=st.integers(min_value=-1, max_value=1024),
    kind=st.sampled_from(list(AccessType)),
    inode=st.integers(min_value=0, max_value=2**40),
    block_start=st.integers(min_value=0, max_value=2**50),
    block_count=st.integers(min_value=0, max_value=1024),
)

forks = st.builds(
    ForkEvent,
    time=times,
    pid=st.integers(min_value=2, max_value=10**6),
    parent_pid=st.just(1),
)

exits = st.builds(
    ExitEvent, time=times, pid=st.integers(min_value=1, max_value=10**6)
)

events = st.lists(st.one_of(io_events, forks, exits), max_size=50)


@given(events, st.text(alphabet="abcxyz", min_size=1, max_size=10),
       st.integers(min_value=0, max_value=99))
def test_round_trip_preserves_everything(event_list, application, index):
    execution = ExecutionTrace(
        application=application,
        execution_index=index,
        events=event_list,
        initial_pids=frozenset({1}),
    )
    stream = StringIO()
    write_execution(execution, stream)
    stream.seek(0)
    restored = read_executions(stream)[0]
    assert restored.application == application
    assert restored.execution_index == index
    assert restored.initial_pids == frozenset({1})
    assert restored.events == event_list
