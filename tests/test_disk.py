"""SimulatedDisk: gap resolution, energy accounting, protocol errors."""

import pytest

from repro.disk.disk import SimulatedDisk
from repro.disk.power_model import fujitsu_mhf2043at
from repro.errors import DiskStateError


@pytest.fixture
def params():
    return fujitsu_mhf2043at()


def test_idle_gap_energy_without_shutdown(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.serve(10.0, 0.0)
    disk.finalize()
    assert disk.ledger.idle_long == pytest.approx(params.idle_power * 10.0)
    assert disk.ledger.power_cycle == 0.0
    assert disk.shutdown_count == 0


def test_short_gap_classified_below_breakeven(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.serve(2.0, 0.0)
    disk.finalize()
    assert disk.ledger.idle_short == pytest.approx(params.idle_power * 2.0)
    assert disk.ledger.idle_long == 0.0


def test_busy_energy(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.5)
    disk.finalize()
    assert disk.ledger.busy == pytest.approx(params.busy_power * 0.5)


def test_shutdown_gap_energy(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    report = disk.serve(100.0, 0.0)
    disk.finalize()
    assert report is not None and report.shutdown_at == pytest.approx(1.0)
    on_idle = params.idle_power * 1.0
    residence = params.standby_power * (99.0 - params.transition_time)
    assert disk.ledger.idle_long == pytest.approx(on_idle + residence)
    assert disk.ledger.power_cycle == pytest.approx(params.cycle_energy)
    assert disk.shutdown_count == 1
    assert disk.spinup_count == 1


def test_request_arriving_mid_transition_still_pays_cycle(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(0.0)
    disk.serve(1.0, 0.0)  # inside shutdown+spinup window
    disk.finalize()
    assert disk.ledger.power_cycle == pytest.approx(params.cycle_energy)
    assert disk.ledger.standby == 0.0


def test_energy_saving_matches_closed_form(params):
    """Shutdown at t=0 in a gap of length L must equal the closed-form
    energy_shutdown_window(L)."""
    gap = 50.0
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(0.0)
    disk.serve(gap, 0.0)
    disk.finalize()
    expected = params.energy_shutdown_window(gap)
    measured = disk.ledger.idle_long + disk.ledger.power_cycle
    assert measured == pytest.approx(expected)


def test_serialized_requests_do_not_create_gaps(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 1.0)
    report = disk.serve(0.5, 1.0)  # arrives while busy
    assert report is None
    assert disk.busy_until == pytest.approx(2.0)
    disk.finalize()
    assert disk.ledger.busy == pytest.approx(params.busy_power * 2.0)
    assert disk.ledger.idle_short == 0.0


def test_leading_gap_accounted_from_start_time(params):
    disk = SimulatedDisk(params, start_time=0.0)
    disk.serve(20.0, 0.0)
    disk.finalize()
    assert disk.ledger.idle_long == pytest.approx(params.idle_power * 20.0)


def test_trailing_gap_accounted_by_finalize(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.finalize(30.0)
    assert disk.ledger.idle_long == pytest.approx(params.idle_power * 30.0)


def test_shutdown_while_busy_rejected(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 1.0)
    with pytest.raises(DiskStateError):
        disk.schedule_shutdown(0.5)


def test_double_shutdown_rejected(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(1.0)
    with pytest.raises(DiskStateError):
        disk.schedule_shutdown(2.0)


def test_time_travel_rejected(params):
    disk = SimulatedDisk(params)
    disk.serve(10.0, 0.0)
    with pytest.raises(DiskStateError):
        disk.serve(5.0, 0.0)


def test_use_after_finalize_rejected(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.finalize()
    with pytest.raises(DiskStateError):
        disk.serve(1.0, 0.0)


def test_negative_duration_rejected(params):
    disk = SimulatedDisk(params)
    with pytest.raises(ValueError):
        disk.serve(0.0, -1.0)


def test_gap_report_fields(params):
    disk = SimulatedDisk(params)
    disk.serve(0.0, 0.0)
    disk.schedule_shutdown(2.0)
    report = disk.serve(12.0, 0.0)
    assert report.length == pytest.approx(12.0)
    assert report.off_window == pytest.approx(10.0)


def test_back_to_back_request_cancels_pending_shutdown(params):
    """Regression: a shutdown pending in a gap swallowed by a
    back-to-back request must not leak into the next gap."""
    disk = SimulatedDisk(params)
    disk.serve(0.0, 1.0)  # busy until 1.0
    disk.schedule_shutdown(5.0)  # pending in the anticipated gap
    disk.serve(0.5, 1.0)  # back-to-back: the gap never happens
    report = disk.serve(100.0, 0.0)  # the next real gap (2.0 -> 100.0)
    assert report is not None
    assert report.shutdown_at is None
    assert disk.shutdown_count == 0
    disk.finalize()
    assert disk.ledger.power_cycle == 0.0
    assert disk.ledger.standby == pytest.approx(0.0)


def test_back_to_back_cancellation_is_traced(params):
    from repro.sim.tracing import TraceRecorder

    recorder = TraceRecorder()
    disk = SimulatedDisk(params, tracer=recorder)
    disk.serve(0.0, 1.0)
    disk.schedule_shutdown(5.0)
    disk.serve(0.5, 1.0)
    kinds = [event.kind for event in recorder.events]
    assert "shutdown-cancel" in kinds
