"""Property tests: disk energy conservation against closed forms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disk.disk import SimulatedDisk
from repro.disk.power_model import fujitsu_mhf2043at

PARAMS = fujitsu_mhf2043at()

# Gap/service schedules: (gap_before, service) pairs.
segments = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=20,
)


@given(segments)
def test_energy_without_shutdowns_matches_closed_form(schedule):
    disk = SimulatedDisk(PARAMS, start_time=0.0)
    t = 0.0
    total_busy = 0.0
    total_idle = 0.0
    for gap, service in schedule:
        t += gap
        disk.serve(t, service)
        total_busy += service
        total_idle += gap
        t += service
    disk.finalize(t)
    expected = (
        PARAMS.busy_power * total_busy + PARAMS.idle_power * total_idle
    )
    assert disk.ledger.total == pytest.approx(expected, rel=1e-9, abs=1e-6)
    assert disk.ledger.power_cycle == 0.0


@given(segments)
def test_energy_with_immediate_shutdowns_matches_closed_form(schedule):
    """Shut down at the start of every gap: energy must equal the sum of
    the power model's per-gap closed forms plus busy energy."""
    disk = SimulatedDisk(PARAMS, start_time=0.0)
    t = 0.0
    expected = 0.0
    for gap, service in schedule:
        if gap > 1e-6:
            disk.schedule_shutdown(t)
            expected += PARAMS.energy_shutdown_window(gap)
        t += gap
        disk.serve(t, service)
        expected += PARAMS.busy_power * service
        t += service
    disk.finalize(t)
    assert disk.ledger.total == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(segments)
def test_shutdowns_never_increase_energy_beyond_base_plus_cycles(schedule):
    """A managed disk can cost at most one cycle energy extra per gap."""
    base = SimulatedDisk(PARAMS, start_time=0.0)
    managed = SimulatedDisk(PARAMS, start_time=0.0)
    t = 0.0
    gaps = 0
    for gap, service in schedule:
        if gap > 1e-6:
            managed.schedule_shutdown(t)
            gaps += 1
        t += gap
        base.serve(t, service)
        managed.serve(t, service)
        t += service
    base.finalize(t)
    managed.finalize(t)
    assert managed.ledger.total <= (
        base.ledger.total + gaps * PARAMS.cycle_energy + 1e-6
    )


@given(segments)
def test_ledger_components_are_non_negative(schedule):
    disk = SimulatedDisk(PARAMS, start_time=0.0)
    t = 0.0
    for index, (gap, service) in enumerate(schedule):
        if gap > 1e-6 and index % 2 == 0:
            disk.schedule_shutdown(t + gap / 2)
        t += gap
        disk.serve(t, service)
        t += service
    disk.finalize(t)
    ledger = disk.ledger
    assert ledger.busy >= 0
    assert ledger.idle_short >= 0
    assert ledger.idle_long >= 0
    assert ledger.power_cycle >= 0
    assert ledger.standby >= 0
