"""ExperimentRunner: matrices, filtering cache, table reuse loops."""

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.sim.experiment import ExperimentRunner
from repro.traces.trace import ApplicationTrace
from tests.helpers import single_process_execution


def _toy_suite():
    """Two-app suite: each execution is one PC burst then a long gap,
    repeated (PCAP-learnable)."""

    def make_trace(name, pc, executions):
        traces = []
        for index in range(executions):
            points = []
            t = 0.0
            for rep in range(3):
                for j in range(3):
                    points.append((t, pc + 16 * j))
                    t += 0.1
                t += 30.0
            traces.append(
                single_process_execution(
                    points, application=name, execution_index=index,
                    end_time=t,
                )
            )
        return ApplicationTrace(name, traces)

    return {
        "alpha": make_trace("alpha", 0x1000, 4),
        "beta": make_trace("beta", 0x9000, 3),
    }


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(_toy_suite(), SimulationConfig())


def test_applications_listing(runner):
    assert runner.applications == ["alpha", "beta"]


def test_filtered_is_memoized(runner):
    first = runner.filtered("alpha")
    second = runner.filtered("alpha")
    assert first is second
    assert len(first) == 4


def test_global_run_aggregates_executions(runner):
    result = runner.run_global("alpha", "TP")
    assert result.executions == 4
    # 3 long gaps per execution (incl. trailing).
    assert result.stats.opportunities == 12
    assert result.energy > 0


def test_pcap_improves_across_executions(runner):
    result = runner.run_global("alpha", "PCAP")
    # First execution trains (3 signatures at most); the rest hit.
    assert result.stats.hits_primary >= 8
    assert result.table_size >= 1


def test_pcapa_never_accumulates(runner):
    result = runner.run_global("alpha", "PCAPa")
    reuse = runner.run_global("alpha", "PCAP")
    assert result.stats.hits_primary < reuse.stats.hits_primary


def test_local_run(runner):
    result = runner.run_local("alpha", "PCAP")
    assert result.stats.opportunities == 12
    assert result.predictor == "PCAP"


def test_local_rejects_omniscient(runner):
    with pytest.raises(SimulationError):
        runner.run_local("alpha", "Ideal")


def test_run_matrix_shape(runner):
    matrix = runner.run_matrix(["TP", "PCAP"], mode="global")
    assert set(matrix) == {"alpha", "beta"}
    assert set(matrix["alpha"]) == {"TP", "PCAP"}


def test_run_matrix_rejects_unknown_mode(runner):
    with pytest.raises(ValueError):
        runner.run_matrix(["TP"], mode="sideways")


def test_unknown_application_rejected(runner):
    with pytest.raises(SimulationError):
        runner.run_global("gamma", "TP")


def test_energy_ordering_on_toy_suite(runner):
    base = runner.run_global("alpha", "Base").energy
    ideal = runner.run_global("alpha", "Ideal").energy
    pcap = runner.run_global("alpha", "PCAP").energy
    tp = runner.run_global("alpha", "TP").energy
    assert ideal < pcap < tp < base
