"""Idle-history register (§4.1.2, PCAPh)."""

import pytest

from repro.core.history import IdleHistoryRegister
from repro.predictors.base import IdleClass


def test_records_short_as_zero_long_as_one():
    register = IdleHistoryRegister(4)
    register.record(IdleClass.SHORT)
    register.record(IdleClass.LONG)
    assert register.bits == (0, 1)


def test_sub_window_periods_not_recorded():
    """Intervals shorter than the wait-window are filtered at run time
    and excluded from the history (§4.1.2)."""
    register = IdleHistoryRegister(4)
    register.record(IdleClass.SUB_WINDOW)
    assert register.bits == ()


def test_window_keeps_only_last_n_bits():
    register = IdleHistoryRegister(3)
    for idle_class in (IdleClass.LONG, IdleClass.SHORT, IdleClass.LONG,
                       IdleClass.LONG):
        register.record(idle_class)
    assert register.bits == (0, 1, 1)


def test_as_int_distinguishes_lengths():
    """(0,) and (0, 0) must produce different keys."""
    a = IdleHistoryRegister(4)
    a.record(IdleClass.SHORT)
    b = IdleHistoryRegister(4)
    b.record(IdleClass.SHORT)
    b.record(IdleClass.SHORT)
    assert a.as_int() != b.as_int()


def test_as_int_distinguishes_patterns():
    a = IdleHistoryRegister(4)
    a.record(IdleClass.SHORT)
    a.record(IdleClass.LONG)
    b = IdleHistoryRegister(4)
    b.record(IdleClass.LONG)
    b.record(IdleClass.SHORT)
    assert a.as_int() != b.as_int()


def test_as_int_is_injective_over_all_short_patterns():
    seen = {}
    for length in range(0, 6):
        for value in range(2**length):
            register = IdleHistoryRegister(6)
            for i in reversed(range(length)):
                bit = (value >> i) & 1
                register.record(IdleClass.LONG if bit else IdleClass.SHORT)
            key = register.as_int()
            assert key not in seen, (seen[key], register.bits)
            seen[key] = register.bits


def test_clear():
    register = IdleHistoryRegister(4)
    register.record(IdleClass.LONG)
    register.clear()
    assert register.bits == ()


def test_invalid_length_rejected():
    with pytest.raises(ValueError):
        IdleHistoryRegister(0)
