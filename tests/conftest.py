"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.disk.power_model import fujitsu_mhf2043at


@pytest.fixture(scope="session")
def config() -> SimulationConfig:
    """The paper's simulation configuration."""
    return SimulationConfig()


@pytest.fixture(scope="session")
def disk_params():
    return fujitsu_mhf2043at()


@pytest.fixture(scope="session")
def breakeven(config) -> float:
    return config.breakeven


@pytest.fixture(scope="session")
def small_suite():
    """A down-scaled six-application suite shared by integration tests.

    Scale 0.25 keeps runtimes low while every application still produces
    idle periods in every execution; the suite builder memoizes, so this
    is built once per session.
    """
    from repro.workloads import build_suite

    return build_suite(scale=0.25)
