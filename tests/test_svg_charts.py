"""SVG chart rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import AccuracyBar, EnergyBar
from repro.analysis.svg_charts import render_accuracy_svg, render_energy_svg


@pytest.fixture
def accuracy_figure():
    def bar(app, pred, hit_p, hit_b, notpred, miss):
        return AccuracyBar(
            application=app, predictor=pred, hit=hit_p + hit_b, miss=miss,
            not_predicted=notpred, hit_primary=hit_p, hit_backup=hit_b,
            miss_primary=miss, miss_backup=0.0, opportunities=100,
        )

    return {
        "mozilla": {
            "TP": bar("mozilla", "TP", 0.5, 0.0, 0.45, 0.03),
            "PCAP": bar("mozilla", "PCAP", 0.7, 0.15, 0.1, 0.1),
        },
        "nedit": {
            "TP": bar("nedit", "TP", 0.9, 0.0, 0.1, 0.0),
            "PCAP": bar("nedit", "PCAP", 1.0, 0.0, 0.0, 0.0),
        },
    }


@pytest.fixture
def energy_figure():
    def bar(app, pred, busy, short, long_, cycle, savings):
        return EnergyBar(
            application=app, predictor=pred, busy=busy, idle_short=short,
            idle_long=long_, power_cycle=cycle, savings=savings,
        )

    return {
        "mozilla": {
            "Base": bar("mozilla", "Base", 0.01, 0.07, 0.92, 0.0, 0.0),
            "PCAP": bar("mozilla", "PCAP", 0.01, 0.07, 0.17, 0.06, 0.69),
        },
    }


def test_accuracy_svg_is_wellformed_xml(accuracy_figure):
    svg = render_accuracy_svg(accuracy_figure, "Figure 7")
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_accuracy_svg_contains_labels_and_bars(accuracy_figure):
    svg = render_accuracy_svg(accuracy_figure, "Figure 7")
    assert "Figure 7" in svg
    assert "mozilla" in svg and "nedit" in svg
    assert "PCAP" in svg
    # One rect per non-zero segment at least.
    assert svg.count("<rect") > 8


def test_accuracy_svg_scales_with_content(accuracy_figure):
    small = render_accuracy_svg(
        {"mozilla": accuracy_figure["mozilla"]}, "t"
    )
    large = render_accuracy_svg(accuracy_figure, "t")
    width = lambda svg: float(ET.fromstring(svg).get("width"))
    assert width(large) > width(small)


def test_energy_svg_is_wellformed(energy_figure):
    svg = render_energy_svg(energy_figure)
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    assert "Base" in svg


def test_title_is_escaped(accuracy_figure):
    svg = render_accuracy_svg(accuracy_figure, "a < b & c")
    ET.fromstring(svg)  # must stay well-formed
    assert "a &lt; b &amp; c" in svg


def test_cli_svg_output(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "fig7.svg"
    code = main(["figure", "7", "--scale", "0.1", "--svg", str(out)])
    assert code == 0
    root = ET.fromstring(out.read_text())
    assert root.tag.endswith("svg")
