"""PCAP variant configurations and application-level shared state."""

import pytest

from repro.core.variants import (
    PAPER_HISTORY_LENGTH,
    PCAPVariant,
    pcap,
    pcap_a,
    pcap_c,
    pcap_f,
    pcap_fh,
    pcap_h,
)
from repro.predictors.base import IdleClass, IdleFeedback
from tests.helpers import access


def test_variant_names_follow_paper_convention():
    assert pcap().name == "PCAP"
    assert pcap_h().name == "PCAPh"
    assert pcap_f().name == "PCAPf"
    assert pcap_fh().name == "PCAPfh"
    assert pcap_a().name == "PCAPa"
    assert pcap_c().name == "PCAPc"


def test_paper_history_length_is_six():
    assert PAPER_HISTORY_LENGTH == 6
    assert pcap_h().history_length == 6


def test_processes_share_the_application_table():
    variant = PCAPVariant(pcap())
    one = variant.create_local(1)
    two = variant.create_local(2)
    assert one.table is two.table is variant.table


def test_training_by_one_process_benefits_another():
    variant = PCAPVariant(pcap())
    one = variant.create_local(1)
    two = variant.create_local(2)
    one.begin_execution(0.0)
    two.begin_execution(0.0)
    one.on_access(access(0.1, pc=0x42))
    one.on_idle_end(IdleFeedback(0.2, 10.0, IdleClass.LONG))
    intent = two.on_access(access(10.0, pc=0x42))
    assert intent.delay == pytest.approx(variant.config.wait_window)


def test_reuse_variant_keeps_table_across_executions():
    variant = PCAPVariant(pcap())
    variant.table.train(123)
    variant.on_execution_end()
    assert variant.table_size == 1


def test_discard_variant_clears_table_at_exit():
    variant = PCAPVariant(pcap_a())
    variant.table.train(123)
    variant.on_execution_end()
    assert variant.table_size == 0


def test_confidence_variant_wires_estimator():
    variant = PCAPVariant(pcap_c())
    assert variant.confidence is not None
    local = variant.create_local(1)
    assert local.confidence is variant.confidence


def test_confidence_cleared_on_discard_variant():
    config = pcap_c(reuse_table=False)
    variant = PCAPVariant(config)
    variant.confidence.record("k", long_idle=False)
    variant.on_execution_end()
    assert variant.confidence.allows("k")


def test_capacity_propagates():
    variant = PCAPVariant(pcap(table_capacity=8))
    assert variant.table.capacity == 8
