"""Prediction-table save/load (§4.2's initialization-file reuse)."""

import pytest

from repro.core.persistence import (
    dump_table,
    load_table,
    load_table_file,
    save_table_file,
)
from repro.core.table import PredictionTable
from repro.errors import PersistenceError


def _table_with(*keys):
    table = PredictionTable()
    for key in keys:
        table.train(key)
    return table


def test_round_trip_int_keys():
    table = _table_with(1, 2, 0xFFFFFFFF)
    restored, application = load_table(dump_table(table, "mozilla"))
    assert application == "mozilla"
    assert set(restored.keys()) == {1, 2, 0xFFFFFFFF}


def test_round_trip_tuple_keys():
    table = _table_with((1, 2), (3, (4, 5)))
    restored, _ = load_table(dump_table(table, "app"))
    assert set(restored.keys()) == {(1, 2), (3, (4, 5))}


def test_round_trip_preserves_lru_order():
    table = _table_with(1, 2, 3)
    table.lookup(1)
    restored, _ = load_table(dump_table(table, "app"))
    assert restored.keys() == table.keys()


def test_round_trip_preserves_capacity():
    table = PredictionTable(capacity=10)
    table.train(1)
    restored, _ = load_table(dump_table(table, "app"))
    assert restored.capacity == 10


def test_file_round_trip(tmp_path):
    path = tmp_path / "mozilla.pcap"
    table = _table_with(7, (8, 9))
    save_table_file(table, "mozilla", path)
    restored, application = load_table_file(path)
    assert application == "mozilla"
    assert set(restored.keys()) == {7, (8, 9)}


def test_missing_file_raises(tmp_path):
    with pytest.raises(PersistenceError):
        load_table_file(tmp_path / "nope.pcap")


def test_invalid_json_rejected():
    with pytest.raises(PersistenceError):
        load_table("{broken")


def test_wrong_format_version_rejected():
    with pytest.raises(PersistenceError):
        load_table('{"format": 99, "application": "x", "entries": []}')


def test_missing_fields_rejected():
    with pytest.raises(PersistenceError):
        load_table('{"format": 1}')


def test_malformed_entry_rejected():
    with pytest.raises(PersistenceError):
        load_table(
            '{"format": 1, "application": "x", "entries": ["string"]}'
        )


def test_non_int_key_rejected_on_dump():
    table = PredictionTable()
    table.train("not-an-int")
    with pytest.raises(PersistenceError):
        dump_table(table, "x")


# ---------------------------------------------------------------------------
# Transient-I/O retries (the persist.os-error fault site)
# ---------------------------------------------------------------------------


def test_transient_os_error_retried_on_load(tmp_path):
    from repro import faults
    from repro.faults import FaultPlan, FaultSpec

    path = tmp_path / "mozilla.pcap"
    save_table_file(_table_with(7), "mozilla", path)
    plan = FaultPlan([FaultSpec(site="persist.os-error", at=1)])
    with faults.injected(plan):
        restored, application = load_table_file(path)
    assert application == "mozilla" and set(restored.keys()) == {7}
    assert len(plan.fired) == 1


def test_transient_os_error_retried_on_save(tmp_path):
    from repro import faults
    from repro.faults import FaultPlan, FaultSpec

    path = tmp_path / "mozilla.pcap"
    plan = FaultPlan([FaultSpec(site="persist.os-error", at=1)])
    with faults.injected(plan):
        save_table_file(_table_with(3), "mozilla", path)
    restored, _ = load_table_file(path)
    assert set(restored.keys()) == {3}


def test_persistent_os_error_surfaces_after_retries(tmp_path):
    from repro import faults
    from repro.core.persistence import IO_ATTEMPTS
    from repro.faults import FaultPlan, FaultSpec

    path = tmp_path / "mozilla.pcap"
    save_table_file(_table_with(7), "mozilla", path)
    plan = FaultPlan([FaultSpec(site="persist.os-error", at=1, count=10)])
    with faults.injected(plan):
        with pytest.raises(PersistenceError, match="after 3 attempts"):
            load_table_file(path)
    assert len(plan.fired) == IO_ATTEMPTS
