"""Global Shutdown Predictor (§5): AND-combination across processes."""

import pytest

from repro.core.global_predictor import GlobalShutdownPredictor
from repro.errors import SimulationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    ShutdownIntent,
)
from repro.predictors.timeout import TimeoutPredictor
from tests.helpers import access


class ScriptedPredictor(LocalPredictor):
    """Returns a fixed intent; records feedback for inspection."""

    def __init__(self, intent: ShutdownIntent):
        self.intent = intent
        self.feedback: list[IdleFeedback] = []

    def initial_intent(self, start_time):
        return self.intent

    def on_access(self, access):
        return self.intent

    def on_idle_end(self, feedback):
        self.feedback.append(feedback)


def make_global(factory, wait_window=1.0, breakeven=5.445):
    return GlobalShutdownPredictor(
        factory, wait_window=wait_window, breakeven=breakeven
    )


def test_decision_is_latest_ready_time():
    combiner = make_global(lambda pid: TimeoutPredictor(10.0))
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    combiner.on_access(access(5.0, pid=1), busy_end=5.01)
    decision = combiner.decision()
    # pid 2 ready at 10.0, pid 1 at 15.01 -> latest wins.
    assert decision.ready_time == pytest.approx(15.01)


def test_any_never_intent_blocks_shutdown():
    intents = {
        1: ShutdownIntent(delay=1.0),
        2: ShutdownIntent.never(),
    }
    combiner = make_global(lambda pid: ScriptedPredictor(intents[pid]))
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    assert combiner.decision() is None


def test_blocking_process_exit_unblocks():
    intents = {
        1: ShutdownIntent(delay=1.0),
        2: ShutdownIntent.never(),
    }
    combiner = make_global(lambda pid: ScriptedPredictor(intents[pid]))
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    combiner.process_exited(50.0, 2)
    decision = combiner.decision()
    assert decision is not None
    assert decision.ready_time == pytest.approx(1.0)


def test_attribution_goes_to_last_decider():
    """§6.4: the shutdown is attributed to the predictor type making the
    last decision."""
    intents = {
        1: ShutdownIntent(delay=1.0, source=PredictorSource.PRIMARY),
        2: ShutdownIntent(delay=10.0, source=PredictorSource.BACKUP),
    }
    combiner = make_global(lambda pid: ScriptedPredictor(intents[pid]))
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    decision = combiner.decision()
    assert decision.source == PredictorSource.BACKUP


def test_no_live_processes_allows_immediate_shutdown():
    combiner = make_global(lambda pid: TimeoutPredictor(10.0))
    decision = combiner.decision()
    assert decision.ready_time == float("-inf")


def test_per_process_feedback_uses_own_stream():
    recorders = {}

    def factory(pid):
        recorders[pid] = ScriptedPredictor(ShutdownIntent.never())
        return recorders[pid]

    combiner = make_global(factory)
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    combiner.on_access(access(1.0, pid=1), busy_end=1.01)
    combiner.on_access(access(2.0, pid=2), busy_end=2.01)
    # pid 1 idle since 1.01; its next access at 20 gets LONG feedback.
    combiner.on_access(access(20.0, pid=1), busy_end=20.01)
    assert len(recorders[1].feedback) == 2  # leading gap + the long one
    assert recorders[1].feedback[-1].idle_class == IdleClass.LONG
    assert recorders[1].feedback[-1].start == pytest.approx(1.01)
    # pid 2 saw only its leading gap so far.
    assert len(recorders[2].feedback) == 1


def test_exit_delivers_trailing_feedback():
    recorder = ScriptedPredictor(ShutdownIntent.never())
    combiner = make_global(lambda pid: recorder)
    combiner.process_started(0.0, 1)
    combiner.on_access(access(1.0, pid=1), busy_end=1.01)
    combiner.process_exited(100.0, 1)
    assert recorder.feedback[-1].idle_class == IdleClass.LONG
    assert recorder.feedback[-1].end == pytest.approx(100.0)


def test_duplicate_start_rejected():
    combiner = make_global(lambda pid: TimeoutPredictor())
    combiner.process_started(0.0, 1)
    with pytest.raises(SimulationError):
        combiner.process_started(1.0, 1)


def test_unknown_exit_rejected():
    combiner = make_global(lambda pid: TimeoutPredictor())
    with pytest.raises(SimulationError):
        combiner.process_exited(0.0, 9)


def test_access_from_dead_pid_rejected():
    combiner = make_global(lambda pid: TimeoutPredictor())
    with pytest.raises(SimulationError):
        combiner.on_access(access(0.0, pid=9), busy_end=0.01)


def test_live_pids_tracks_membership():
    combiner = make_global(lambda pid: TimeoutPredictor())
    combiner.process_started(0.0, 1)
    combiner.process_started(0.0, 2)
    combiner.process_exited(1.0, 1)
    assert combiner.live_pids == {2}
