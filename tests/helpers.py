"""Shared test helpers: compact constructors for accesses and traces."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cache.filter import DiskAccess
from repro.traces.events import AccessType, ExitEvent, ForkEvent, IOEvent
from repro.traces.trace import ExecutionTrace


def access(
    time: float,
    pid: int = 100,
    pc: int = 0x1000,
    fd: int = 3,
    kind: AccessType = AccessType.READ,
    inode: int = 7,
    block_count: int = 1,
) -> DiskAccess:
    """A disk access with compact defaults."""
    return DiskAccess(
        time=time,
        pid=pid,
        pc=pc,
        fd=fd,
        kind=kind,
        inode=inode,
        block_count=block_count,
    )


def accesses_at(times: Sequence[float], **kwargs) -> list[DiskAccess]:
    """Accesses at the given times sharing all other fields."""
    return [access(time, **kwargs) for time in times]


def io_event(
    time: float,
    pid: int = 100,
    pc: int = 0x1000,
    fd: int = 3,
    kind: AccessType = AccessType.READ,
    inode: int = 7,
    block_start: int = 0,
    block_count: int = 1,
) -> IOEvent:
    return IOEvent(
        time=time,
        pid=pid,
        pc=pc,
        fd=fd,
        kind=kind,
        inode=inode,
        block_start=block_start,
        block_count=block_count,
    )


def single_process_execution(
    times_and_pcs: Iterable[tuple[float, int]],
    *,
    application: str = "app",
    execution_index: int = 0,
    pid: int = 100,
    end_time: float | None = None,
    fresh_blocks: bool = True,
) -> ExecutionTrace:
    """An execution with one process reading at given (time, pc) points.

    With ``fresh_blocks`` every event reads a distinct block so the cache
    filter passes everything through to the disk.
    """
    events: list = []
    for index, (time, pc) in enumerate(times_and_pcs):
        events.append(
            io_event(
                time,
                pid=pid,
                pc=pc,
                block_start=1000 + execution_index * 100000 + index * 4,
                block_count=1 if fresh_blocks else 0,
            )
        )
    if end_time is not None:
        events.append(ExitEvent(time=end_time, pid=pid))
    execution = ExecutionTrace(
        application=application,
        execution_index=execution_index,
        events=events,
        initial_pids=frozenset({pid}),
    ).sorted()
    execution.validate()
    return execution


def two_process_execution(
    main_events: Iterable[tuple[float, int]],
    helper_events: Iterable[tuple[float, int]],
    *,
    application: str = "app",
    fork_time: float = 0.01,
    end_time: float = 1000.0,
) -> ExecutionTrace:
    """Main pid 100 plus helper pid 101 forked at ``fork_time``."""
    events: list = [ForkEvent(time=fork_time, pid=101, parent_pid=100)]
    for index, (time, pc) in enumerate(main_events):
        events.append(
            io_event(time, pid=100, pc=pc, block_start=10_000 + index * 4)
        )
    for index, (time, pc) in enumerate(helper_events):
        events.append(
            io_event(time, pid=101, pc=pc, block_start=90_000 + index * 4)
        )
    events.append(ExitEvent(time=end_time - 0.002, pid=101))
    events.append(ExitEvent(time=end_time, pid=100))
    execution = ExecutionTrace(
        application=application,
        execution_index=0,
        events=events,
        initial_pids=frozenset({100}),
    ).sorted()
    execution.validate()
    return execution
