"""Disk state machine: legal transitions and helpers."""

import pytest

from repro.disk.states import (
    LEGAL_TRANSITIONS,
    DiskState,
    check_transition,
    is_spun_up,
)
from repro.errors import DiskStateError


def test_active_can_only_go_idle():
    check_transition(DiskState.ACTIVE, DiskState.IDLE)
    with pytest.raises(DiskStateError):
        check_transition(DiskState.ACTIVE, DiskState.STANDBY)


def test_idle_supports_service_and_shutdown():
    check_transition(DiskState.IDLE, DiskState.ACTIVE)
    check_transition(DiskState.IDLE, DiskState.SPINNING_DOWN)
    check_transition(DiskState.IDLE, DiskState.LOW_POWER_IDLE)


def test_standby_needs_spinup_before_service():
    with pytest.raises(DiskStateError):
        check_transition(DiskState.STANDBY, DiskState.ACTIVE)
    check_transition(DiskState.STANDBY, DiskState.SPINNING_UP)


def test_request_during_spin_down_redirects_to_spin_up():
    check_transition(DiskState.SPINNING_DOWN, DiskState.SPINNING_UP)


def test_no_self_transitions():
    for state, targets in LEGAL_TRANSITIONS.items():
        assert state not in targets


def test_every_state_has_an_exit():
    for state in DiskState:
        assert LEGAL_TRANSITIONS[state], f"{state} is a dead end"


def test_is_spun_up_matches_platter_states():
    assert is_spun_up(DiskState.ACTIVE)
    assert is_spun_up(DiskState.IDLE)
    assert is_spun_up(DiskState.LOW_POWER_IDLE)
    assert not is_spun_up(DiskState.STANDBY)
    assert not is_spun_up(DiskState.SPINNING_DOWN)
    assert not is_spun_up(DiskState.SPINNING_UP)


def test_graph_is_closed_under_diskstate():
    states = set(DiskState)
    assert set(LEGAL_TRANSITIONS) == states
    for targets in LEGAL_TRANSITIONS.values():
        assert targets <= states
