"""Integration: the paper's qualitative results (shape checks) hold on a
moderately-scaled suite.

Scale 0.35 keeps several executions per application (enough for table
reuse to matter) while staying fast; the full-scale numbers are produced
by the benchmarks and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.compare import (
    fig6_checks,
    fig7_checks,
    fig8_checks,
    fig9_checks,
    fig10_checks,
)
from repro.analysis.figures import (
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_fig10,
)
from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.workloads import build_suite


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(build_suite(scale=0.35), SimulationConfig())


def _assert_checks(checks):
    failed = [c for c in checks if not c.passed]
    assert not failed, "\n".join(f"{c.name}: {c.detail}" for c in failed)


def test_fig6_local_shape(runner):
    _assert_checks(fig6_checks(build_fig6(runner)))


def test_fig7_global_shape(runner):
    _assert_checks(fig7_checks(build_fig7(runner)))


def test_fig8_energy_shape(runner):
    checks = fig8_checks(build_fig8(runner))
    # The "mplayer is the limited-idle outlier" property depends on full
    # movie lengths: at this reduced scale mplayer plays only ~2 chapters,
    # so its idle share is not yet the minimum.  The full-scale benchmark
    # (bench_fig8_energy) exercises that check.
    checks = [
        c for c in checks if "limited-idle outlier" not in c.name
    ]
    _assert_checks(checks)


def test_fig9_optimization_shape(runner):
    _assert_checks(fig9_checks(build_fig9(runner)))


def test_fig10_reuse_shape(runner):
    _assert_checks(fig10_checks(build_fig10(runner)))
