"""Analysis layer: tables, figures, renderers, shape checks.

Uses a deterministic toy suite so the figure builders' arithmetic is
verifiable; the real-suite shape checks live in the integration tests.
"""

import pytest

from repro.analysis.compare import (
    fig8_checks,
    fig10_checks,
    render_checks,
)
from repro.analysis.figures import (
    average_bars,
    average_savings,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_fig10,
)
from repro.analysis.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.analysis.report import (
    render_accuracy_figure,
    render_energy_figure,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.tables import build_table1, build_table2, build_table3
from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.traces.trace import ApplicationTrace
from tests.helpers import single_process_execution


@pytest.fixture(scope="module")
def runner():
    def make_trace(name, pc, executions):
        traces = []
        for index in range(executions):
            points = []
            t = 0.0
            # Each rep uses a distinct PC set (stable across executions):
            # no intra-execution repetition, so PCAPa's primary collapses
            # while reuse-enabled PCAP hits from execution 2 on.
            for rep in range(3):
                for j in range(3):
                    points.append((t, pc + rep * 256 + 16 * j))
                    t += 0.1
                t += 25.0
            traces.append(
                single_process_execution(
                    points, application=name, execution_index=index,
                    end_time=t,
                )
            )
        return ApplicationTrace(name, traces)

    suite = {
        "alpha": make_trace("alpha", 0x1000, 4),
        "mplayer": make_trace("mplayer", 0x9000, 3),
    }
    return ExperimentRunner(suite, SimulationConfig())


def test_table1_counts(runner):
    rows = build_table1(runner)
    by_app = {row.application: row for row in rows}
    assert by_app["alpha"].executions == 4
    assert by_app["alpha"].global_idle_periods == 12
    # Single process: local equals global.
    assert by_app["alpha"].local_idle_periods == 12
    assert by_app["alpha"].total_ios == 4 * 9


def test_table2_matches_paper(disk_params):
    rows = build_table2(disk_params)
    values = {row.name: row.value for row in rows}
    assert values["Busy power"] == PAPER_TABLE2["busy_power_w"]
    assert values["Breakeven time (derived)"] == pytest.approx(
        PAPER_TABLE2["breakeven_time_s"], abs=0.03
    )


def test_table3_reports_entry_counts(runner):
    rows = build_table3(runner, variants=("PCAP", "PCAPh"),
                        applications=("alpha",))
    assert rows[0].entries["PCAP"] >= 1
    assert rows[0].entries["PCAPh"] >= rows[0].entries["PCAP"]


def test_fig6_and_fig7_structures(runner):
    fig6 = build_fig6(runner, predictors=("TP", "PCAP"))
    fig7 = build_fig7(runner, predictors=("TP", "PCAP"))
    for figure in (fig6, fig7):
        assert set(figure) == {"alpha", "mplayer"}
        bar = figure["alpha"]["PCAP"]
        assert 0.0 <= bar.hit <= 1.2
        assert bar.opportunities > 0


def test_fig8_fractions_sum_to_one_for_base(runner):
    fig8 = build_fig8(runner, predictors=("Base", "Ideal", "TP"))
    base = fig8["alpha"]["Base"]
    assert base.total == pytest.approx(1.0)
    assert base.savings == pytest.approx(0.0)
    assert fig8["alpha"]["Ideal"].savings > 0


def test_fig9_and_fig10(runner):
    fig9 = build_fig9(runner, predictors=("PCAP", "PCAPh"))
    assert fig9["alpha"]["PCAPh"].predictor == "PCAPh"
    fig10 = build_fig10(runner)
    avg = average_bars(fig10, "PCAPa")
    assert avg.application == "average"


def test_average_bars_arithmetic(runner):
    figure = build_fig7(runner, predictors=("TP",))
    avg = average_bars(figure, "TP")
    manual = (figure["alpha"]["TP"].hit + figure["mplayer"]["TP"].hit) / 2
    assert avg.hit == pytest.approx(manual)


def test_average_savings(runner):
    fig8 = build_fig8(runner, predictors=("Base", "Ideal"))
    value = average_savings(fig8, "Ideal")
    manual = (
        fig8["alpha"]["Ideal"].savings + fig8["mplayer"]["Ideal"].savings
    ) / 2
    assert value == pytest.approx(manual)


def test_fig10_checks_pass_on_toy_suite(runner):
    fig10 = build_fig10(runner)
    results = fig10_checks(fig10)
    # The reuse collapse must reproduce even on the toy suite.
    collapse = next(c for c in results if "collapses" in c.name)
    assert collapse.passed, collapse.detail


def test_fig8_checks_structure(runner):
    fig8 = build_fig8(runner)
    results = fig8_checks(fig8)
    assert len(results) == 4
    assert all(isinstance(c.detail, str) for c in results)


def test_renderers_produce_text(runner, disk_params):
    table1 = render_table1(build_table1(runner))
    assert "alpha" in table1
    table2 = render_table2(build_table2(disk_params))
    assert "Breakeven" in table2
    table3 = render_table3(
        build_table3(runner, variants=("PCAP",), applications=("alpha",))
    )
    assert "PCAP" in table3
    fig = render_accuracy_figure(
        build_fig7(runner, predictors=("TP",)), "Figure 7"
    )
    assert "AVERAGE" in fig
    energy = render_energy_figure(build_fig8(runner))
    assert "savings" in energy
    checks = render_checks(fig8_checks(build_fig8(runner)))
    assert "shape checks passed" in checks


def test_paper_data_self_consistency():
    assert set(PAPER_TABLE1) == set(PAPER_TABLE3)
    for entries in PAPER_TABLE3.values():
        assert entries["PCAPfh"] >= entries["PCAP"]
