"""run_global_execution: merged streams, liveness, energy accounting."""

import pytest

from repro.cache.filter import DiskAccess, FilterResult
from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.sim.engine import run_global_execution
from repro.traces.events import AccessType, ExitEvent, ForkEvent
from repro.traces.trace import ExecutionTrace
from tests.helpers import access, io_event


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


def _execution_and_accesses(
    points, *, end_time, pids=(100,), forks=(), exits=()
):
    """Build an execution plus a matching pre-filtered access list.

    ``points`` are (time, pid, pc) disk accesses.  The execution's event
    list carries matching IOEvents (content irrelevant — the engine reads
    the FilterResult) plus the liveness events.
    """
    events = list(forks)
    for time, pid, pc in points:
        events.append(io_event(time, pid=pid, pc=pc, block_start=int(time * 1000)))
    events.extend(exits)
    execution = ExecutionTrace(
        "app", 0, events, initial_pids=frozenset(pids)
    ).sorted()
    accesses = [access(time, pid=pid, pc=pc) for time, pid, pc in points]
    accesses.sort(key=lambda a: a.time)
    filtered = FilterResult(
        application="app", execution_index=0, accesses=accesses
    )
    return execution, filtered


def test_base_never_shuts_down(config):
    execution, filtered = _execution_and_accesses(
        [(0.0, 100, 1), (100.0, 100, 1)], end_time=100.0,
        exits=[ExitEvent(time=100.0, pid=100)],
    )
    result = run_global_execution(
        execution, filtered, make_spec("Base", config), config
    )
    assert result.shutdowns == 0
    assert result.stats.opportunities == 1
    assert result.ledger.power_cycle == 0.0


def test_oracle_hits_every_opportunity(config):
    execution, filtered = _execution_and_accesses(
        [(0.0, 100, 1), (50.0, 100, 1), (53.0, 100, 1), (120.0, 100, 1)],
        end_time=120.0, exits=[ExitEvent(time=120.0, pid=100)],
    )
    result = run_global_execution(
        execution, filtered, make_spec("Ideal", config), config
    )
    assert result.stats.opportunities == 2
    assert result.stats.hits_primary == 2
    assert result.stats.misses == 0


def test_oracle_uses_less_energy_than_base(config):
    points = [(0.0, 100, 1), (60.0, 100, 1), (130.0, 100, 1)]
    exits = [ExitEvent(time=130.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        points, end_time=130.0, exits=exits
    )
    base = run_global_execution(
        execution, filtered, make_spec("Base", config), config
    )
    execution, filtered = _execution_and_accesses(
        points, end_time=130.0, exits=exits
    )
    oracle = run_global_execution(
        execution, filtered, make_spec("Ideal", config), config
    )
    assert oracle.ledger.total < base.ledger.total


def test_tp_global_waits_for_all_processes(config):
    """Process 2's access restarts only its own timer; the disk shuts
    down 10 s after the LAST process's access (§5's example)."""
    forks = [ForkEvent(time=0.0, pid=101, parent_pid=100)]
    exits = [ExitEvent(time=100.0, pid=101), ExitEvent(time=100.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        [(1.0, 100, 1), (5.0, 101, 2)],
        end_time=100.0, forks=forks, exits=exits,
    )
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    # One merged gap from 5.0+service to 100; shutdown at 5.0+svc+10.
    assert result.shutdowns == 1
    assert result.stats.hits_primary == 1


def test_never_intent_blocks_until_exit(config):
    """An EXP predictor that never predicts blocks the global shutdown;
    after its process exits, remaining processes decide."""
    forks = [ForkEvent(time=0.0, pid=101, parent_pid=100)]
    exits = [ExitEvent(time=30.0, pid=101), ExitEvent(time=200.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        [(1.0, 100, 1), (2.0, 101, 2)],
        end_time=200.0, forks=forks, exits=exits,
    )
    # EXP starts predicting 0 idle -> never shuts down; pid 101's EXP
    # blocks until it exits at t=30, then pid 100's EXP still never
    # predicts... use TP for main via mixed spec is overkill; just check
    # EXP yields no shutdowns while both live.
    result = run_global_execution(
        execution, filtered, make_spec("EXP", config), config
    )
    assert result.shutdowns == 0


def test_fork_mid_gap_delays_shutdown(config):
    """A fork inside an idle gap adds a process whose initial intent
    (backup-less TP primary timer) pushes the global ready time out."""
    forks = [ForkEvent(time=5.0, pid=101, parent_pid=100)]
    exits = [ExitEvent(time=100.0, pid=101), ExitEvent(time=100.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        [(0.0, 100, 1)], end_time=100.0, forks=forks, exits=exits,
    )
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    # Main ready at ~10.0, but the fork at 5.0 arms a fresh 10 s timer:
    # shutdown at ~15.0; still one hit.
    assert result.shutdowns == 1
    assert result.stats.hits_primary == 1
    # Energy: idle until 15.0 then standby — check the idle portion
    # exceeds 15 s worth at idle power minus epsilon.
    assert result.ledger.idle_long >= config.disk.idle_power * 14.9


def test_flush_access_from_dead_pid_served_without_predictor(config):
    exits = [ExitEvent(time=10.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        [(1.0, 100, 1)], end_time=10.0, exits=exits,
    )
    # Inject a kernel flush attributed to the (now dead) pid after exit.
    filtered.accesses.append(
        DiskAccess(
            time=10.0, pid=100, pc=0xFFFF0000, fd=-1,
            kind=AccessType.FLUSH, inode=1,
        )
    )
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    assert result.disk_accesses == 2  # served without raising


def test_stats_and_ledger_consistency(config):
    """Shutdown count from stats equals the disk's shutdown counter."""
    points = [(0.0, 100, 1), (40.0, 100, 1), (90.0, 100, 1)]
    exits = [ExitEvent(time=90.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        points, end_time=90.0, exits=exits
    )
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    assert result.stats.shutdowns == result.shutdowns


def test_energy_conservation_against_closed_form(config):
    """Base-system energy equals busy + idle computed by hand."""
    points = [(0.0, 100, 1), (20.0, 100, 1)]
    exits = [ExitEvent(time=30.0, pid=100)]
    execution, filtered = _execution_and_accesses(
        points, end_time=30.0, exits=exits
    )
    result = run_global_execution(
        execution, filtered, make_spec("Base", config), config
    )
    service = config.access_duration(1)
    busy = 2 * service * config.disk.busy_power
    idle = (30.0 - 2 * service) * config.disk.idle_power
    assert result.ledger.total == pytest.approx(busy + idle)


def test_access_from_unregistered_pid_feeds_predictor(config):
    """Regression: an access whose pid the trace never introduced (fork
    unobserved / absent from initial_pids) must register the pid and
    feed its predictor instead of silently dropping the update."""
    from repro.sim.tracing import TraceRecorder

    execution, filtered = _execution_and_accesses(
        [(0.0, 100, 1), (5.0, 200, 2), (80.0, 200, 2), (100.0, 100, 1)],
        end_time=100.0, pids=(100,),
    )
    recorder = TraceRecorder()
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config,
        tracer=recorder,
    )
    unknown = [e for e in recorder.events if e.kind == "unknown-pid"]
    assert [e.pid for e in unknown] == [200]
    # Pid 200's standing timeout intent now gates the global decision:
    # the shutdown in the 5->80 gap fires ~10 s after *its* access (t~15),
    # not ~10 s after pid 100's earlier one.
    fired = [e for e in recorder.events if e.kind == "shutdown-fired"]
    assert fired, "expected a shutdown in the long gap"
    assert fired[0].time == pytest.approx(15.0, abs=0.1)
    assert result.stats.shutdowns == len(fired)


def test_fork_observed_after_first_access(config):
    """A fork record arriving after the pid's first access (out-of-order
    capture) must not crash on double registration."""
    execution, filtered = _execution_and_accesses(
        [(0.0, 100, 1), (5.0, 200, 2), (100.0, 100, 1)],
        end_time=100.0, pids=(100,),
        forks=[ForkEvent(time=6.0, pid=200, parent_pid=100)],
        exits=[ExitEvent(time=100.0, pid=100)],
    )
    result = run_global_execution(
        execution, filtered, make_spec("TP", config), config
    )
    assert result.disk_accesses == 3
