"""PCAPPredictor unit tests, including the paper's Figure 3 walk-through."""

import pytest

from repro.core.confidence import ConfidenceEstimator
from repro.core.pcap import PCAPPredictor
from repro.core.table import PredictionTable
from repro.errors import ConfigurationError
from repro.predictors.base import (
    IdleClass,
    IdleFeedback,
    PredictorSource,
)
from tests.helpers import access

PC1, PC2 = 0x1000, 0x2000


def make_pcap(table=None, **kwargs) -> PCAPPredictor:
    # Note: an empty PredictionTable is falsy (len 0), so test `is None`.
    if table is None:
        table = PredictionTable()
    return PCAPPredictor(table, **kwargs)


def feed_burst(predictor, pcs, start=0.0, spacing=0.1, fd=3):
    """Feed a burst of accesses; returns the last intent."""
    intent = None
    for i, pc in enumerate(pcs):
        intent = predictor.on_access(access(start + i * spacing, pc=pc, fd=fd))
    return intent


def long_idle(predictor, start, end):
    predictor.on_idle_end(
        IdleFeedback(start=start, end=end, idle_class=IdleClass.LONG)
    )


def short_idle(predictor, start, end):
    predictor.on_idle_end(
        IdleFeedback(start=start, end=end, idle_class=IdleClass.SHORT)
    )


def test_figure3_walkthrough():
    """The paper's running example: {PC1, PC2, PC1} learned after the
    first long idle period, predicted on the second occurrence."""
    table = PredictionTable()
    pcap = make_pcap(table)
    pcap.begin_execution(0.0)

    # First sequence: unknown signature, backup timeout covers.
    intent = feed_burst(pcap, [PC1, PC2, PC1], start=0.1)
    assert intent.source == PredictorSource.BACKUP
    long_idle(pcap, 0.4, 20.0)
    assert PC1 + PC2 + PC1 in table

    # Second sequence: signature matches, shutdown after the wait-window.
    intent = feed_burst(pcap, [PC1, PC2, PC1], start=20.1)
    assert intent.source == PredictorSource.PRIMARY
    assert intent.delay == pytest.approx(pcap.wait_window)
    long_idle(pcap, 20.4, 40.0)


def test_figure3_subpath_aliasing_cancelled_by_wait_window():
    """Third sequence of Figure 3: {PC1,PC2,PC1} immediately followed by
    PC2 — the wait-window must cancel the matched prediction (the gap is
    sub-window), and the path continues accumulating."""
    table = PredictionTable()
    pcap = make_pcap(table)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1, PC2, PC1], start=0.1)
    long_idle(pcap, 0.4, 20.0)

    intent = feed_burst(pcap, [PC1, PC2, PC1], start=20.1)
    assert intent.predicts_shutdown
    # PC2 arrives 0.1 s later (inside the window): engine never fires;
    # predictor sees a sub-window feedback and keeps the path open.
    pcap.on_idle_end(
        IdleFeedback(start=20.4, end=20.5, idle_class=IdleClass.SUB_WINDOW)
    )
    intent = pcap.on_access(access(20.5, pc=PC2))
    # Path is now PC1+PC2+PC1+PC2 — untrained, so backup.
    assert intent.source == PredictorSource.BACKUP
    long_idle(pcap, 20.6, 60.0)
    assert PC1 + PC2 + PC1 + PC2 in table


def test_signature_restarts_after_long_idle():
    table = PredictionTable()
    pcap = make_pcap(table)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1], start=0.0)
    long_idle(pcap, 0.1, 10.0)
    feed_burst(pcap, [PC2], start=10.0)
    long_idle(pcap, 10.1, 20.0)
    # Second path trained PC2 alone, not PC1+PC2.
    assert PC2 in table
    assert (PC1 + PC2) not in table


def test_short_idle_does_not_restart_or_train():
    table = PredictionTable()
    pcap = make_pcap(table)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1], start=0.0)
    short_idle(pcap, 0.1, 3.0)
    feed_burst(pcap, [PC2], start=3.0)
    long_idle(pcap, 3.1, 30.0)
    assert (PC1 + PC2) in table
    assert PC1 not in table


def test_no_backup_returns_never():
    pcap = make_pcap(backup_timeout=None)
    pcap.begin_execution(0.0)
    intent = feed_burst(pcap, [PC1])
    assert not intent.predicts_shutdown


def test_begin_execution_resets_runtime_state_but_not_table():
    table = PredictionTable()
    pcap = make_pcap(table)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1, PC2])
    long_idle(pcap, 0.2, 10.0)
    pcap.begin_execution(0.0)
    # Table persists: the same path matches in the new execution.
    intent = feed_burst(pcap, [PC1, PC2])
    assert intent.source == PredictorSource.PRIMARY


def test_history_variant_distinguishes_contexts():
    table = PredictionTable()
    pcap = make_pcap(table, history_length=4)
    pcap.begin_execution(0.0)
    # Train PC1 with history (LONG,) i.e. after one long idle.
    feed_burst(pcap, [PC1], start=0.0)
    long_idle(pcap, 0.1, 10.0)  # history becomes (1,)
    feed_burst(pcap, [PC1], start=10.0)
    long_idle(pcap, 10.1, 20.0)  # trains (PC1, hist=(1,))
    # Same signature with a different history must not match.
    short_idle(pcap, 20.1, 24.0)  # history now (1, 1, 0)
    intent = feed_burst(pcap, [PC1], start=24.0)
    assert intent.source == PredictorSource.BACKUP


def test_fd_variant_distinguishes_descriptors():
    table = PredictionTable()
    pcap = make_pcap(table, use_file_descriptor=True)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1], fd=5)
    long_idle(pcap, 0.1, 10.0)
    matched = feed_burst(pcap, [PC1], start=10.0, fd=5)
    assert matched.source == PredictorSource.PRIMARY
    long_idle(pcap, 10.1, 20.0)
    other_fd = feed_burst(pcap, [PC1], start=20.0, fd=9)
    assert other_fd.source == PredictorSource.BACKUP


def test_confidence_gates_repeat_mispredictors():
    table = PredictionTable()
    confidence = ConfidenceEstimator(initial=2, threshold=2)
    pcap = make_pcap(table, confidence=confidence)
    pcap.begin_execution(0.0)
    feed_burst(pcap, [PC1])
    long_idle(pcap, 0.1, 10.0)  # trains PC1, counter -> 3
    # Two consecutive mispredictions (matched, then short idle).
    for start in (10.0, 14.0):
        intent = feed_burst(pcap, [PC1], start=start)
        if intent.source == PredictorSource.PRIMARY:
            short_idle(pcap, start + 0.1, start + 3.0)
    # After repeated wrong outcomes the key is gated.
    feed_burst(pcap, [PC1], start=30.0)
    short_idle(pcap, 30.1, 33.0)
    intent = feed_burst(pcap, [PC1], start=40.0)
    assert intent.source == PredictorSource.BACKUP


def test_name_reflects_features():
    assert make_pcap().name == "PCAP"
    assert make_pcap(history_length=6).name == "PCAPh"
    assert make_pcap(use_file_descriptor=True).name == "PCAPf"
    assert make_pcap(
        history_length=6, use_file_descriptor=True
    ).name == "PCAPfh"


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        make_pcap(wait_window=-1.0)
    with pytest.raises(ConfigurationError):
        make_pcap(backup_timeout=0.0)


def test_initial_intent_is_backup():
    pcap = make_pcap()
    intent = pcap.initial_intent(0.0)
    assert intent.source == PredictorSource.BACKUP
    assert intent.delay == pytest.approx(10.0)


def test_trailing_idle_does_not_retrain_stale_key():
    """Regression: after a LONG idle trains (or verifies) the pending
    key, a following idle period with no intervening I/O — e.g. the
    trailing gap before process exit — must not retrain the stale key."""
    from repro.sim.tracing import TraceRecorder

    table = PredictionTable()
    pcap = make_pcap(table)
    recorder = TraceRecorder()
    pcap.bind_tracing(recorder, 100)
    feed_burst(pcap, [PC1])
    long_idle(pcap, 0.1, 100.0)
    long_idle(pcap, 100.0, 200.0)  # trailing gap, no access in between
    trains = [e for e in recorder.events if e.kind == "table-train"]
    assert len(trains) == 1
    assert len(table) == 1


def test_pcap_emits_lookup_and_history_events():
    from repro.sim.tracing import TraceRecorder

    table = PredictionTable()
    pcap = make_pcap(table, history_length=2)
    recorder = TraceRecorder()
    pcap.bind_tracing(recorder, 42)
    feed_burst(pcap, [PC1, PC2])
    long_idle(pcap, 0.2, 50.0)
    kinds = [e.kind for e in recorder.events]
    assert kinds.count("sig-lookup") == 2
    assert "table-train" in kinds
    assert "history" in kinds
    lookup = recorder.events[0]
    assert lookup.pid == 42 and lookup.hit is False
