"""Trace → disk-access filtering (cache misses become disk accesses)."""

import pytest

from repro.cache.filter import filter_application, filter_execution
from repro.cache.page_cache import CacheConfig
from repro.cache.writeback import FLUSH_FD, coalesce_writebacks
from repro.cache.page_cache import WriteBack
from repro.traces.events import KERNEL_FLUSH_PC, AccessType
from repro.traces.trace import ApplicationTrace, ExecutionTrace
from tests.helpers import io_event


def _execution(events):
    return ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100})
    )


def test_cold_read_reaches_disk():
    execution = _execution([io_event(0.1, block_start=10, block_count=2)])
    result = filter_execution(execution)
    assert len(result.accesses) == 1
    access = result.accesses[0]
    assert access.time == 0.1
    assert access.block_count == 2
    assert access.kind == AccessType.READ


def test_repeated_read_is_absorbed():
    events = [
        io_event(0.1, block_start=10),
        io_event(0.2, block_start=10),
        io_event(0.3, block_start=10),
    ]
    result = filter_execution(_execution(events))
    assert len(result.accesses) == 1
    assert result.cache_stats.read_hits == 2


def test_buffered_write_defers_to_flush_daemon():
    events = [
        io_event(0.1, kind=AccessType.WRITE, block_start=5),
        io_event(40.0, block_start=99),  # triggers daemon advance past 30s
    ]
    result = filter_execution(_execution(events), flush_on_exit=False)
    kinds = [a.kind for a in result.accesses]
    assert AccessType.FLUSH in kinds
    flush = next(a for a in result.accesses if a.is_flush)
    assert flush.time == pytest.approx(30.0)
    assert flush.pc == KERNEL_FLUSH_PC
    assert flush.fd == FLUSH_FD


def test_sync_write_goes_straight_to_disk():
    events = [io_event(0.1, kind=AccessType.SYNC_WRITE, block_start=5)]
    result = filter_execution(_execution(events), flush_on_exit=False)
    assert len(result.accesses) == 1
    assert result.accesses[0].kind == AccessType.SYNC_WRITE


def test_flush_on_exit_writes_remaining_dirty_data():
    events = [io_event(0.1, kind=AccessType.WRITE, block_start=5)]
    result = filter_execution(_execution(events), flush_on_exit=True)
    assert any(a.is_flush for a in result.accesses)


def test_open_behaves_like_read():
    events = [io_event(0.1, kind=AccessType.OPEN, block_start=77)]
    result = filter_execution(_execution(events))
    assert len(result.accesses) == 1


def test_close_generates_no_traffic():
    events = [io_event(0.1, kind=AccessType.CLOSE, block_count=0)]
    result = filter_execution(_execution(events))
    assert result.accesses == []


def test_accesses_sorted_by_time():
    events = [
        io_event(0.1, kind=AccessType.WRITE, block_start=1),
        io_event(35.0, block_start=50),
        io_event(35.1, block_start=60),
    ]
    result = filter_execution(_execution(events))
    times = [a.time for a in result.accesses]
    assert times == sorted(times)


def test_per_process_grouping():
    events = [
        io_event(0.1, pid=100, block_start=1),
    ]
    result = filter_execution(_execution(events))
    grouped = result.per_process()
    assert set(grouped) == {100}


def test_small_cache_passes_more_traffic_through():
    events = [
        io_event(0.1 * i, block_start=(i % 8) * 4, block_count=4)
        for i in range(1, 33)
    ]
    big = filter_execution(
        _execution(events),
        CacheConfig(capacity_bytes=64 * 4096),
    )
    small = filter_execution(
        _execution(events),
        CacheConfig(capacity_bytes=4 * 4096),
    )
    assert len(small.accesses) > len(big.accesses)


def test_filter_application_runs_every_execution():
    trace = ApplicationTrace(
        "app",
        [
            _execution([io_event(0.1, block_start=1)]),
            ExecutionTrace(
                "app", 1, [io_event(0.2, block_start=2)],
                initial_pids=frozenset({100}),
            ),
        ],
    )
    results = filter_application(trace)
    assert [r.execution_index for r in results] == [0, 1]
    # Fresh cache per execution: both cold reads miss.
    assert all(len(r.accesses) == 1 for r in results)


def test_coalesce_writebacks_groups_by_time_pid_inode():
    writebacks = [
        WriteBack(time=30.0, block=1, inode=9, pid=1),
        WriteBack(time=30.0, block=2, inode=9, pid=1),
        WriteBack(time=30.0, block=3, inode=8, pid=1),
        WriteBack(time=60.0, block=4, inode=9, pid=1),
    ]
    records = coalesce_writebacks(writebacks)
    assert len(records) == 3
    first = records[0]
    assert first["block_count"] == 1 or first["block_count"] == 2
    assert {r["time"] for r in records} == {30.0, 60.0}
