"""Property tests: the strace importer never crashes on messy input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.traces.strace_import import parse_strace

# Fragments that compose into plausible-to-garbled strace lines.
garbage_lines = st.lists(
    st.one_of(
        st.text(max_size=60),
        st.from_regex(
            r"\d{1,5} \d{1,6}\.\d{1,6} \[[0-9a-f]{4,16}\] "
            r"(read|write|openat|close|mmap|futex)\(\d{0,3}.{0,20}\) = -?\d{1,6}",
            fullmatch=True,
        ),
        st.from_regex(
            r"\d{1,5} \d{1,6}\.\d{1,6} \+\+\+ exited with \d+ \+\+\+",
            fullmatch=True,
        ),
    ),
    max_size=30,
)


@settings(max_examples=80, deadline=None)
@given(garbage_lines)
def test_importer_never_crashes(lines):
    """Garbage in → either a valid trace or TraceFormatError, never an
    unhandled exception."""
    text = "\n".join(lines)
    try:
        execution, stats = parse_strace(text)
    except TraceFormatError:
        return
    execution.validate()
    assert stats.io_events >= 0
    assert stats.io_events == len(execution.io_events)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=2**48),
            st.integers(min_value=0, max_value=64),
            st.integers(min_value=0, max_value=65536),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_wellformed_reads_always_import(calls):
    """Every syntactically valid read line becomes exactly one event
    with monotone, rebased timestamps."""
    t = 0.0
    lines = []
    for dt, pc, fd, nbytes in calls:
        t += dt
        lines.append(f"7 {1000 + t:.6f} [{pc:x}] read({fd}, \"\", 4096) = {nbytes}")
    execution, stats = parse_strace("\n".join(lines))
    assert stats.io_events == len(calls)
    times = [e.time for e in execution.io_events]
    assert times == sorted(times)
    assert times[0] >= 0.0
