"""Fused single-pass multi-predictor kernel (repro.sim.fused).

The contract under test: the fused kernel is *purely an execution
strategy* — for every registered predictor, every entry point
(``run_fused_application``, the fused ``sweep()`` path, the fused
matrix), and every execution substrate (serial, fork pool, store-backed
streaming traces, the resilient executor with injected worker crashes),
its results are bit-identical to the classic one-simulation-per-cell
path.  The kernel earns its keep on speed and memory, never on changed
numbers.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import faults
from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.faults import FaultPlan, FaultSpec
from repro.predictors.registry import KNOWN_PREDICTORS, make_spec, tp_spec
from repro.sim.artifact_cache import (
    ArtifactCache,
    fused_key,
    variant_set_fingerprint,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.fused import (
    FusedCellOutcome,
    fused_supported,
    run_fused_application,
    run_fused_cells,
)
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.resilience import ResiliencePolicy
from repro.sim.sweep import sweep
from repro.workloads import build_suite, pack_generated

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="pool path needs the fork start method"
)

#: Fast retry policy for the fault-injection tests.
QUICK = ResiliencePolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)

#: Two-application slice: mozilla stresses forks/exits, mplayer has the
#: densest access stream.  (build_suite memoizes, so this is cheap.)
APPS = ("mozilla", "mplayer")

#: A representative matrix column set: constant-delay lane (TP), generic
#: per-process lanes (LT, PCAPfh), and both omniscient lanes.
MATRIX_NAMES = ("TP", "LT", "PCAPfh", "Ideal", "Base")


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def runner(config):
    return ExperimentRunner(
        build_suite(scale=0.25, applications=APPS), config
    )


@pytest.fixture(scope="module")
def parallel_runner(config):
    return ParallelExperimentRunner(
        build_suite(scale=0.25, applications=APPS), config
    )


# ---------------------------------------------------------------------------
# Per-variant bit-identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("application", APPS)
def test_every_known_predictor_bit_identical(runner, config, application):
    """One fused pass over ALL registered predictors equals one classic
    simulation per predictor — stats, energy ledger, shutdowns, delays,
    table sizes, everything ApplicationResult carries."""
    fused = run_fused_application(
        runner,
        application,
        [make_spec(name, config) for name in KNOWN_PREDICTORS],
    )
    classic = [
        runner.run_global(application, make_spec(name, config))
        for name in KNOWN_PREDICTORS
    ]
    assert fused == classic


def test_tracing_runner_rejects_fused(config):
    traced = ExperimentRunner(
        build_suite(scale=0.25, applications=("mozilla",)),
        config,
        tracing=True,
    )
    assert not fused_supported(traced)
    with pytest.raises(SimulationError, match="tracing"):
        run_fused_application(traced, "mozilla", [make_spec("TP", config)])


def test_fused_supported_excludes_multistate(runner):
    assert fused_supported(runner)
    assert not fused_supported(runner, multistate=True)


# ---------------------------------------------------------------------------
# Sweep and matrix equivalence
# ---------------------------------------------------------------------------


def test_sweep_fused_matches_classic(runner):
    values = (0.5, 2.0, 10.0)

    def timeout_spec(value, cfg):
        return tp_spec(cfg, timeout=value, name=f"TP({value:g}s)")

    kwargs = dict(make_spec=timeout_spec, applications=APPS, jobs=1)
    fused = sweep(runner, values, fused=True, **kwargs)
    classic = sweep(runner, values, fused=False, **kwargs)
    assert fused == classic


def test_sweep_fused_named_predictors(runner):
    """Sweeping registry names (the Figure-7 shape) is fused-eligible
    and identical, including the shared Base baseline per point."""
    names = ("TP", "PCAP", "PCAPfh")
    kwargs = dict(
        make_spec=lambda name, cfg: make_spec(name, cfg),
        applications=APPS,
        jobs=1,
    )
    fused = sweep(runner, names, fused=True, **kwargs)
    classic = sweep(runner, names, fused=False, **kwargs)
    assert fused == classic


def test_matrix_fused_matches_classic_serial(parallel_runner):
    kwargs = dict(applications=APPS, jobs=1)
    fused = parallel_runner.run_matrix(MATRIX_NAMES, fused=True, **kwargs)
    classic = parallel_runner.run_matrix(MATRIX_NAMES, fused=False, **kwargs)
    assert fused == classic
    # Rows are keyed by the *requested* registry names, like classic.
    assert set(fused["mozilla"]) == set(MATRIX_NAMES)


@needs_fork
def test_matrix_fused_matches_classic_pooled(parallel_runner):
    fused = parallel_runner.run_matrix(
        MATRIX_NAMES, applications=APPS, jobs=2, fused=True
    )
    classic = parallel_runner.run_matrix(
        MATRIX_NAMES, applications=APPS, jobs=1, fused=False
    )
    assert fused == classic


def test_serial_runner_matrix_fused(runner):
    fused = runner.run_matrix(MATRIX_NAMES, applications=APPS, fused=True)
    classic = runner.run_matrix(MATRIX_NAMES, applications=APPS, fused=False)
    assert fused == classic


# ---------------------------------------------------------------------------
# Store-backed streaming traces
# ---------------------------------------------------------------------------


def test_store_backed_fused_bit_identical(tmp_path, runner, config):
    """Fused over a chunked on-disk store equals fused (and classic)
    over the in-memory suite — the tape builder consumes the streaming
    ExecutionLike protocol one chunk at a time."""
    store = pack_generated(
        tmp_path / "store", scale=0.25, applications=APPS, chunk_rows=512
    )
    stored = ExperimentRunner(store.suite(), config)
    specs = lambda: [make_spec(n, config) for n in MATRIX_NAMES]
    from_store = run_fused_application(stored, "mozilla", specs())
    in_memory = run_fused_application(runner, "mozilla", specs())
    assert from_store == in_memory


# ---------------------------------------------------------------------------
# Resilient execution with injected faults
# ---------------------------------------------------------------------------


@needs_fork
def test_resilient_fused_survives_worker_crash(parallel_runner):
    """A fused cell whose worker crashes once is retried and the final
    matrix is bit-identical to the unfaulted classic run."""
    plan = FaultPlan([FaultSpec(site="worker.crash", cell=0, attempts=1)])
    with faults.injected(plan):
        report = parallel_runner.run_matrix_resilient(
            MATRIX_NAMES,
            applications=APPS,
            jobs=2,
            policy=QUICK,
            fused=True,
        )
    assert report.complete
    assert [e.kind for e in report.ledger.retries] == ["crash"]
    classic = parallel_runner.run_matrix(
        MATRIX_NAMES, applications=APPS, jobs=1, fused=False
    )
    assert report.matrix == classic


@needs_fork
def test_resilient_fused_all_success_path(parallel_runner):
    report = parallel_runner.run_matrix_resilient(
        MATRIX_NAMES, applications=APPS, jobs=2, policy=QUICK, fused=True
    )
    assert report.complete
    assert report.matrix == parallel_runner.run_matrix(
        MATRIX_NAMES, applications=APPS, jobs=1, fused=False
    )


# ---------------------------------------------------------------------------
# Artifact-cache keying
# ---------------------------------------------------------------------------


def test_variant_set_fingerprint_pins_labels_and_config():
    config = SimulationConfig()
    base = variant_set_fingerprint(("TP", "LT"), config)
    assert variant_set_fingerprint(("TP", "LT"), config) == base
    # Different variant set, different order, different config: all
    # distinct keys — no fused artifact can serve a stale lane set.
    assert variant_set_fingerprint(("TP",), config) != base
    assert variant_set_fingerprint(("LT", "TP"), config) != base
    other = SimulationConfig(timeout=42.0)
    assert variant_set_fingerprint(("TP", "LT"), other) != base


def test_fused_key_separates_traces_and_variant_sets():
    config = SimulationConfig()
    key = fused_key("trace-a", config, ("TP", "LT"))
    assert fused_key("trace-a", config, ("TP", "LT")) == key
    assert fused_key("trace-b", config, ("TP", "LT")) != key
    assert fused_key("trace-a", config, ("TP",)) != key


def test_fused_cells_roundtrip_through_artifact_cache(tmp_path, config):
    cache = ArtifactCache(tmp_path)
    runner = ExperimentRunner(
        build_suite(scale=0.25, applications=("mozilla",)),
        config,
        artifact_cache=cache,
    )
    labels = ("TP", "Base")
    make_specs = lambda: [make_spec(n, config) for n in labels]
    cold, _ = run_fused_cells(runner, ("mozilla",), labels, make_specs, jobs=1)
    hits_before = cache.stats.hits
    warm, _ = run_fused_cells(runner, ("mozilla",), labels, make_specs, jobs=1)
    assert cache.stats.hits > hits_before
    assert warm == cold
    assert isinstance(warm["mozilla"], FusedCellOutcome)
    # Opaque variant sets must not populate or consult the cache.
    stats_before = (cache.stats.hits, cache.stats.misses)
    run_fused_cells(
        runner, ("mozilla",), labels, make_specs, jobs=1, use_cache=False
    )
    assert (cache.stats.hits, cache.stats.misses) == stats_before


# ---------------------------------------------------------------------------
# Memory bound
# ---------------------------------------------------------------------------


def test_fused_pass_memory_stays_bounded(runner, config):
    """Adding lanes must not multiply peak memory: the tape is shared
    and per-lane state is a handful of accumulators, so a 13-lane pass
    stays within a small constant of a single-lane pass."""
    runner.filtered("mozilla")  # warm the filter memo out of the measurement

    def peak(lanes):
        tracemalloc.start()
        try:
            run_fused_application(
                runner,
                "mozilla",
                [make_spec(n, config) for n in lanes],
            )
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak_bytes

    single = peak(("PCAPfh",))
    many = peak(
        ("TP", "TP-BE", "LT", "LTa", "PCAP", "PCAPh", "PCAPf", "PCAPfh",
         "PCAPa", "PCAPc", "EXP", "Ideal", "Base")
    )
    assert many < single * 3 + 512 * 1024
