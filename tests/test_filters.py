"""Trace filtering utilities."""

import pytest

from repro.traces.events import AccessType
from repro.traces.filters import filter_events, only_kind, only_pid, time_window
from repro.traces.trace import ExecutionTrace
from tests.helpers import io_event


def _execution():
    events = [
        io_event(0.1, pid=100, kind=AccessType.READ),
        io_event(0.2, pid=101, kind=AccessType.WRITE),
        io_event(0.3, pid=100, kind=AccessType.READ),
    ]
    return ExecutionTrace(
        "app", 0, events, initial_pids=frozenset({100, 101})
    )


def test_only_pid():
    filtered = only_pid(_execution(), 100)
    assert [e.pid for e in filtered.io_events] == [100, 100]


def test_only_kind():
    filtered = only_kind(_execution(), AccessType.WRITE)
    assert len(filtered.io_events) == 1
    assert filtered.io_events[0].kind == AccessType.WRITE


def test_time_window():
    filtered = time_window(_execution(), 0.15, 0.25)
    assert [e.time for e in filtered.io_events] == [0.2]


def test_time_window_rejects_inverted():
    with pytest.raises(ValueError):
        time_window(_execution(), 1.0, 0.0)


def test_filter_preserves_metadata():
    filtered = filter_events(_execution(), lambda e: True)
    assert filtered.application == "app"
    assert filtered.initial_pids == frozenset({100, 101})
