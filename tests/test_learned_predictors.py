"""Learning-augmented predictor family (repro.predictors.learned).

The contracts under test:

* **Seeded determinism** — the same Q-DPM seed produces bit-identical
  results on every execution substrate: serial, 2-worker pool, fused
  kernel, store-backed streaming traces, and the resilient executor
  with an injected worker crash.  Exploration is a counter-indexed
  hash stream, so determinism follows from the engine's fixed call
  order — these tests are the regression net for that ordering.
* **λ extremes** — the learned ski rental degenerates exactly as the
  theory says: λ = 0 is bit-identical to its advice source (PCAP with
  the backup timeout disabled), λ = 1 matches the breakeven-timeout
  policy (TP-BE) in every energy- and coverage-level field (only the
  PRIMARY/BACKUP attribution differs, by construction).
* **Registry ergonomics** — unknown predictor names fail with a typed
  ConfigurationError listing the registry and close-match suggestions.
"""

from __future__ import annotations

from dataclasses import fields

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, FaultSpec
from repro.predictors.learned import (
    QDPMVariant,
    exploration_draw,
    multistate_schedule,
)
from repro.predictors.learned.feedback import PIControllerVariant
from repro.core.variants import PCAPVariant, PCAPVariantConfig
from repro.predictors.registry import (
    KNOWN_PREDICTORS,
    PredictorSpec,
    make_spec,
    qdpm_spec,
    ski_spec,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.fused import run_fused_application
from repro.sim.parallel import ParallelExperimentRunner, fork_available
from repro.sim.resilience import ResiliencePolicy
from repro.workloads import build_suite, pack_generated
from repro.workloads.extremes import build_clockwork

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="pool path needs the fork start method"
)

QUICK = ResiliencePolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)

APPS = ("mozilla", "mplayer")
LEARNED = ("QDPM", "SKI", "PI")


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def runner(config):
    return ExperimentRunner(
        build_suite(scale=0.25, applications=APPS), config
    )


@pytest.fixture(scope="module")
def parallel_runner(config):
    return ParallelExperimentRunner(
        build_suite(scale=0.25, applications=APPS), config
    )


def result_without_name(result) -> dict:
    """Every ApplicationResult field except the predictor label."""
    return {
        field.name: getattr(result, field.name)
        for field in fields(result)
        if field.name != "predictor"
    }


# ---------------------------------------------------------------------------
# Exploration stream
# ---------------------------------------------------------------------------


def test_exploration_draw_is_a_pure_function():
    stream = [exploration_draw(7, n) for n in range(100)]
    again = [exploration_draw(7, n) for n in range(100)]
    assert stream == again
    assert all(0.0 <= u < 1.0 for u in stream)


def test_exploration_draw_seed_sensitivity():
    assert [exploration_draw(0, n) for n in range(20)] != [
        exploration_draw(1, n) for n in range(20)
    ]


# ---------------------------------------------------------------------------
# Q-DPM unit behaviour
# ---------------------------------------------------------------------------


def test_qdpm_hyperparameter_validation(config):
    with pytest.raises(ConfigurationError):
        QDPMVariant(config, epsilon=1.5)
    with pytest.raises(ConfigurationError):
        QDPMVariant(config, learning_rate=0.0)
    with pytest.raises(ConfigurationError):
        QDPMVariant(config, discount=1.0)


def test_qdpm_greedy_when_epsilon_zero(config):
    shared = QDPMVariant(config, epsilon=0.0)
    state = (1, 2)
    shared.q[(state, 2)] = 1.0
    assert shared.choose(state) == 2
    # Ties break toward the lowest rung.
    assert shared.choose((0, 0)) == 0


def test_qdpm_reward_shape(config):
    shared = QDPMVariant(config)
    breakeven = config.breakeven
    wait_rung = 0  # delay = wait_window
    never_rung = len(shared.actions) - 1
    # Paying shutdown: off-window beats breakeven.
    assert shared.reward(wait_rung, breakeven * 3) == 1.0
    # Premature fire: fired but off-window below breakeven.
    assert shared.reward(wait_rung, config.wait_window + 0.1) == -1.0
    # Correct restraint on a short gap / slept-through long gap.
    assert shared.reward(never_rung, breakeven / 2) == 0.5
    assert shared.reward(never_rung, breakeven * 3) == -1.0


def test_qdpm_learns_a_table(runner, config):
    spec = qdpm_spec(config)
    result = runner.run_global("mozilla", spec)
    assert result.table_size > 0
    assert result.predictor == "QDPM"


def test_qdpm_spec_name_pins_hyperparameters(config):
    assert qdpm_spec(config).name == "QDPM"
    assert "seed=3" in qdpm_spec(config, seed=3).name


# ---------------------------------------------------------------------------
# Registry ergonomics
# ---------------------------------------------------------------------------


def test_unknown_predictor_suggests_close_matches(config):
    with pytest.raises(ConfigurationError) as excinfo:
        make_spec("QDMP", config)
    message = str(excinfo.value)
    assert "did you mean" in message
    assert "QDPM" in message


def test_unknown_predictor_lists_registry(config):
    with pytest.raises(ConfigurationError) as excinfo:
        make_spec("not-a-predictor-at-all", config)
    message = str(excinfo.value)
    for name in KNOWN_PREDICTORS:
        assert name in message


def test_learned_names_registered(config):
    for name in LEARNED:
        assert name in KNOWN_PREDICTORS
        assert make_spec(name, config).name == name


# ---------------------------------------------------------------------------
# Seeded determinism across execution substrates
# ---------------------------------------------------------------------------


def test_same_seed_bit_identical_serial(runner, config):
    for name in LEARNED:
        first = runner.run_global("mozilla", make_spec(name, config))
        second = runner.run_global("mozilla", make_spec(name, config))
        assert first == second, name


def test_learned_fused_matches_classic(runner, config):
    for application in APPS:
        fused = run_fused_application(
            runner,
            application,
            [make_spec(name, config) for name in LEARNED],
        )
        classic = [
            runner.run_global(application, make_spec(name, config))
            for name in LEARNED
        ]
        assert fused == classic, application


@needs_fork
def test_learned_pooled_matches_serial(parallel_runner):
    pooled = parallel_runner.run_matrix(LEARNED, applications=APPS, jobs=2)
    serial = parallel_runner.run_matrix(LEARNED, applications=APPS, jobs=1)
    assert pooled == serial


def test_learned_store_backed_matches_in_memory(tmp_path, runner, config):
    store = pack_generated(
        tmp_path / "store", scale=0.25, applications=APPS, chunk_rows=512
    )
    stored = ExperimentRunner(store.suite(), config)
    for name in LEARNED:
        from_store = stored.run_global("mozilla", make_spec(name, config))
        in_memory = runner.run_global("mozilla", make_spec(name, config))
        assert from_store == in_memory, name


@needs_fork
def test_learned_resilient_crash_retry_identical(parallel_runner):
    plan = FaultPlan([FaultSpec(site="worker.crash", cell=0, attempts=1)])
    with faults.injected(plan):
        report = parallel_runner.run_matrix_resilient(
            LEARNED, applications=APPS, jobs=2, policy=QUICK, fused=True
        )
    assert report.complete
    assert [e.kind for e in report.ledger.retries] == ["crash"]
    assert report.matrix == parallel_runner.run_matrix(
        LEARNED, applications=APPS, jobs=1, fused=False
    )


# ---------------------------------------------------------------------------
# Ski-rental λ extremes
# ---------------------------------------------------------------------------


def no_backup_pcap_spec(config) -> PredictorSpec:
    """PCAP with its backup timeout disabled — SKI's advice source.

    Built directly (``pcap_spec`` force-resolves the config's backup
    timeout, which is exactly what the advice must not have).
    """
    shared = PCAPVariant(
        PCAPVariantConfig(
            wait_window=config.wait_window, backup_timeout=None
        )
    )
    return PredictorSpec(
        name="PCAP-noback",
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )


def test_lambda_zero_is_pure_advice(runner, config):
    """λ = 0 trusts the table completely: bit-identical to no-backup
    PCAP in every field except the predictor label."""
    for application in APPS:
        ski = runner.run_global(application, ski_spec(config, lam=0.0))
        advice = runner.run_global(application, no_backup_pcap_spec(config))
        assert result_without_name(ski) == result_without_name(advice)


def test_lambda_one_is_pure_ski_rental(runner, config):
    """λ = 1 ignores the advice: both branches collapse to the breakeven
    timeout, so everything the energy model sees matches TP-BE.  (Only
    the PRIMARY/BACKUP attribution differs: SKI's hedge timer reports as
    the backup channel.)"""
    for application in APPS:
        ski = runner.run_global(application, ski_spec(config, lam=1.0))
        tpbe = runner.run_global(application, make_spec("TP-BE", config))
        assert ski.ledger == tpbe.ledger
        assert ski.shutdowns == tpbe.shutdowns
        assert ski.stats.hits == tpbe.stats.hits
        assert ski.stats.misses == tpbe.stats.misses
        assert ski.delayed_requests == tpbe.delayed_requests
        assert ski.delay_seconds == tpbe.delay_seconds


def test_ski_lambda_validation(config):
    with pytest.raises(ConfigurationError):
        ski_spec(config, lam=-0.1)
    with pytest.raises(ConfigurationError):
        ski_spec(config, lam=1.1)


def test_ski_pairs_with_multistate_disk(runner):
    """The multi-state pairing of Antoniadis et al.: deeper low-power
    states can only help a policy that already avoids premature fires."""
    flat = runner.run_global("mozilla", "SKI")
    laddered = runner.run_global("mozilla", "SKI", multistate=True)
    assert laddered.energy < flat.energy


# ---------------------------------------------------------------------------
# Multi-state λ schedule
# ---------------------------------------------------------------------------

LADDER = ((1.0, 0.0), (0.6, 2.0), (0.2, 8.0))


def test_multistate_schedule_advice_free_is_classic():
    schedule = multistate_schedule(LADDER, 1.0, advice_long=True)
    assert schedule == [2.0 / 0.4, 8.0 / 0.8]
    assert schedule == multistate_schedule(LADDER, 1.0, advice_long=False)


def test_multistate_schedule_scales_with_lambda():
    eager = multistate_schedule(LADDER, 0.5, advice_long=True)
    wary = multistate_schedule(LADDER, 0.5, advice_long=False)
    classic = multistate_schedule(LADDER, 1.0, advice_long=True)
    assert all(e < c < w for e, c, w in zip(eager, classic, wary))
    # Full trust on a predicted-short gap: never transition.
    assert multistate_schedule(LADDER, 0.0, advice_long=False) == [
        float("inf"),
        float("inf"),
    ]
    # Schedules are non-decreasing down the ladder.
    for schedule in (eager, wary, classic):
        assert schedule == sorted(schedule)


def test_multistate_schedule_validation():
    with pytest.raises(ConfigurationError):
        multistate_schedule(LADDER, 2.0, advice_long=True)
    with pytest.raises(ConfigurationError):
        multistate_schedule(((1.0, 0.0), (1.0, 2.0)), 1.0, advice_long=True)
    with pytest.raises(ConfigurationError):
        multistate_schedule(((1.0, 0.0), (0.5, -1.0)), 1.0, advice_long=True)
    assert multistate_schedule(((1.0, 0.0),), 1.0, advice_long=True) == []


# ---------------------------------------------------------------------------
# PI feedback controller
# ---------------------------------------------------------------------------


def test_pi_gain_validation(config):
    with pytest.raises(ConfigurationError):
        PIControllerVariant(config, setpoint=1.0)
    with pytest.raises(ConfigurationError):
        PIControllerVariant(config, kp=0.0, ki=0.0)
    with pytest.raises(ConfigurationError):
        PIControllerVariant(config, smoothing=0.0)


def test_pi_timeout_tightens_on_friendly_workload(config):
    """On clockwork every gap is long: no premature fires, irritation
    stays under the setpoint, and the controller ratchets the timeout
    down from the configured TP timer."""
    shared = PIControllerVariant(config)
    spec = PredictorSpec(
        name="PI-probe",
        local_factory=shared.create_local,
        end_execution_hook=shared.on_execution_end,
        table_size_fn=lambda: shared.table_size,
    )
    runner = ExperimentRunner({"clockwork": build_clockwork(8)}, config)
    runner.run_global("clockwork", spec)
    assert shared.updates > 0
    assert shared.timeout < config.timeout
    assert shared.timeout >= shared.min_timeout
