"""Parameter sweep utilities."""

import pytest

from repro.config import SimulationConfig
from repro.predictors.registry import tp_spec
from repro.sim.experiment import ExperimentRunner
from repro.sim.sweep import SweepPoint, render_sweep, sweep
from repro.traces.trace import ApplicationTrace
from tests.helpers import single_process_execution


@pytest.fixture(scope="module")
def runner():
    executions = []
    for index in range(3):
        points = []
        t = 0.0
        for rep in range(4):
            points.append((t, 0x1000))
            t += 40.0
        executions.append(
            single_process_execution(
                points, application="app", execution_index=index, end_time=t
            )
        )
    return ExperimentRunner(
        {"app": ApplicationTrace("app", executions)}, SimulationConfig()
    )


def test_sweep_over_configs(runner):
    points = sweep(
        runner,
        [1.0, 20.0],
        make_config=lambda t: SimulationConfig(timeout=t),
        predictor="TP",
    )
    assert len(points) == 2
    # A 20 s timer saves less than a 1 s timer on 40 s gaps.
    assert points[0].savings > points[1].savings


def test_sweep_over_specs(runner):
    points = sweep(
        runner,
        [2.0, 30.0],
        make_spec=lambda t, cfg: tp_spec(cfg, timeout=t),
    )
    assert points[0].shutdowns >= points[1].shutdowns


def test_sweep_rejects_both_factories(runner):
    with pytest.raises(ValueError):
        sweep(
            runner,
            [1],
            make_config=lambda v: SimulationConfig(),
            make_spec=lambda v, c: tp_spec(c),
        )


def test_sweep_point_fields(runner):
    (point,) = sweep(runner, [5.0],
                     make_config=lambda t: SimulationConfig(timeout=t),
                     predictor="TP")
    assert isinstance(point, SweepPoint)
    assert 0.0 <= point.hit_fraction <= 1.2
    assert point.energy > 0
    assert point.delayed_requests >= point.irritating_delays >= 0


def test_sweep_shares_baseline_across_predictor_knob_points(runner):
    # The Base system never reads wait_window/timeout, so a sweep over a
    # predictor knob needs exactly one baseline cell per application —
    # not one per (point, application).
    labels = []
    points = sweep(
        runner,
        [1.0, 5.0, 20.0],
        make_config=lambda t: SimulationConfig(timeout=t),
        predictor="TP",
        progress=lambda event: labels.append(event.cell.predictor),
    )
    assert len(points) == 3
    assert labels.count("Base") == 1
    assert len(labels) == 4  # 3 run cells + 1 shared baseline cell
    # Every point's savings is computed against the same baseline.
    assert all(point.savings <= points[0].savings for point in points)


def test_sweep_recomputes_baseline_when_relevant_config_changes(runner):
    # service_time feeds the baseline energy, so varying it must produce
    # one fresh baseline per point.
    labels = []
    sweep(
        runner,
        [0.010, 0.020],
        make_config=lambda s: SimulationConfig(service_time=s),
        predictor="TP",
        progress=lambda event: labels.append(event.cell.predictor),
    )
    assert labels.count("Base") == 2


def test_render_sweep(runner):
    points = sweep(runner, [5.0],
                   make_config=lambda t: SimulationConfig(timeout=t),
                   predictor="TP")
    text = render_sweep(points, "TP timeout sweep")
    assert "TP timeout sweep" in text
    assert "5.0" in text


# ---------------------------------------------------------------------------
# Duplicate / shadowed lane names (fused vs classic parity)
# ---------------------------------------------------------------------------
#
# Lanes and cells are positional, so duplicate swept values (and
# duplicate predictor names in a matrix) must fold identically on the
# fused and classic paths — and the variant-set fingerprint must tell
# apart orderings and duplicates, because a fused checkpoint entry
# covers the whole positional lane list.


def test_sweep_duplicate_values_fused_matches_classic(runner):
    make = lambda t, cfg: tp_spec(cfg, timeout=t)  # noqa: E731
    values = [2.0, 30.0, 2.0]  # the duplicate is a real, separate point
    classic = sweep(runner, values, make_spec=make, fused=False)
    fused = sweep(runner, values, make_spec=make, fused=True)
    assert classic == fused
    assert len(classic) == 3
    assert classic[0] == classic[2]  # same knob value, same point


def test_matrix_duplicate_predictor_names_fused_matches_classic():
    from repro.sim.parallel import ParallelExperimentRunner
    from repro.workloads import build_suite

    suite = build_suite(scale=0.2, applications=("mozilla",))
    runner = ParallelExperimentRunner(suite, SimulationConfig())
    names = ["TP", "Base", "TP"]  # shadowed: the dict row keeps one TP
    classic = runner.run_matrix(names, fused=False)
    fused = runner.run_matrix(names, fused=True)
    assert classic == fused
    assert set(classic["mozilla"]) == {"TP", "Base"}  # last-wins collapse


def test_variant_set_fingerprint_is_positional():
    from repro.sim.artifact_cache import variant_set_fingerprint

    config = SimulationConfig()
    ab = variant_set_fingerprint(("TP", "Base"), config)
    ba = variant_set_fingerprint(("Base", "TP"), config)
    dup = variant_set_fingerprint(("TP", "Base", "TP"), config)
    assert len({ab, ba, dup}) == 3  # order and multiplicity both count
