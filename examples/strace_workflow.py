"""Real-trace workflow: strace text → simulation → energy verdict.

The paper built its evaluation on strace-collected desktop traces.  This
example walks the same pipeline on a bundled strace capture (a small
build-system session): import, inspect, filter through the cache, and
compare shutdown predictors on the resulting disk stream.

For your own traces::

    strace -f -ttt -i -e trace=read,write,openat,close,fsync,clone,exit_group \\
           -o build.strace  make
    python -m repro import-strace build.strace --app make --predictor PCAP

Run:  python examples/strace_workflow.py
"""

from repro import ExperimentRunner, SimulationConfig
from repro.traces.strace_import import parse_strace
from repro.traces.trace import ApplicationTrace


def _sample_session(run: int) -> str:
    """A synthetic-but-realistic strace capture of an edit/build loop.

    Each run: the editor saves a file (fsync), a compiler child is
    cloned, reads headers and sources, writes an object, exits; then the
    developer reads the output and thinks (the long idle period before
    the next run).  The call-site addresses stay fixed across runs —
    the property PCAP needs — while file offsets advance.
    """
    base = 1_700_000_000.0 + run * 300.0
    parent, child = 4000, 4100 + run
    lines = [
        f"{parent} {base + 0.00:.6f} [00005555000010a0] openat(AT_FDCWD, \"main.c\", O_RDWR) = 3",
        f"{parent} {base + 0.05:.6f} [00005555000010b0] write(3, \"...\", 8192) = 8192",
        f"{parent} {base + 0.06:.6f} [00005555000010c0] fsync(3) = 0",
        f"{parent} {base + 0.08:.6f} [00005555000010d0] close(3) = 0",
        f"{parent} {base + 0.20:.6f} [00005555000011a0] clone(child_stack=NULL, flags=SIGCHLD) = {child}",
    ]
    t = base + 0.30
    for header in range(6):
        lines.append(
            f"{child} {t:.6f} [0000555500002{header:03x}0] "
            f"openat(AT_FDCWD, \"hdr{header}.h\", O_RDONLY) = 4"
        )
        t += 0.01
        lines.append(
            f"{child} {t:.6f} [00005555000030a0] read(4, \"\", 16384) = 16384"
        )
        t += 0.02
    lines.append(
        f"{child} {t:.6f} [00005555000040a0] openat(AT_FDCWD, \"main.o\", O_WRONLY) = 5"
    )
    lines.append(
        f"{child} {t + 0.05:.6f} [00005555000040b0] write(5, \"\", 65536) = 65536"
    )
    lines.append(f"{child} {t + 0.10:.6f} +++ exited with 0 +++")
    # The developer reads the build output, thinks, edits (idle ~90 s).
    lines.append(
        f"{parent} {t + 0.20:.6f} [00005555000050a0] read(0, \"\", 1024) = 64"
    )
    return "\n".join(lines)


def main() -> None:
    config = SimulationConfig()
    text = "\n".join(_sample_session(run) for run in range(8))
    execution, stats = parse_strace(text, application="editbuild")
    print(f"imported: {stats.io_events} I/O events, {stats.forks} forks, "
          f"{stats.exits} exits, {stats.skipped_lines} lines skipped")
    print(f"processes: {sorted(execution.pids)}")
    print(f"trace span: {execution.end_time - execution.start_time:.1f} s")

    runner = ExperimentRunner(
        {"editbuild": ApplicationTrace("editbuild", [execution])}, config
    )
    base = runner.run_global("editbuild", "Base")
    print(f"\n{base.stats.opportunities} shutdown opportunities "
          f"(think time between build runs)")
    print(f"{'predictor':10s} {'coverage':>9s} {'misses':>8s} {'savings':>8s}")
    for name in ("TP", "LT", "PCAP", "Ideal"):
        result = runner.run_global("editbuild", name)
        savings = 1.0 - result.energy / base.energy
        print(f"{name:10s} {result.stats.hit_fraction:9.1%} "
              f"{result.stats.miss_fraction:8.1%} {savings:8.1%}")
    print("\nThe edit/build loop's call sites repeat every run, so PCAP's")
    print("signature for 'build finished, developer reading output' is")
    print("trained after the first iteration.")


if __name__ == "__main__":
    main()
