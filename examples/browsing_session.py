"""Driving PCAP by hand on a browsing session, with table persistence.

Demonstrates the low-level API: build an execution trace with the
workload DSL, filter it through the file cache, feed the per-process
disk accesses to a PCAPPredictor, watch the signature logic train and
predict, and round-trip the trained table through the §4.2
"initialization file".

Run:  python examples/browsing_session.py
"""

import tempfile
from pathlib import Path

from repro import PCAPPredictor, PredictionTable, SimulationConfig
from repro.cache import filter_execution
from repro.core.persistence import load_table_file, save_table_file
from repro.predictors import IdleFeedback, classify_gap
from repro.workloads import build_execution
from repro.workloads.mozilla import spec as mozilla_spec


def drive_session(predictor: PCAPPredictor, config, execution) -> dict:
    """Feed one execution's main-process disk stream to the predictor."""
    filtered = filter_execution(execution, config.cache)
    stream = [a for a in filtered.accesses if a.pid == 1000]
    counts = {"matched": 0, "backup": 0, "trained_before": len(predictor.table)}
    predictor.begin_execution(execution.start_time)
    busy_end = execution.start_time
    for access in stream:
        gap = access.time - busy_end
        if gap > 1e-9:
            predictor.on_idle_end(
                IdleFeedback(
                    busy_end, access.time,
                    classify_gap(gap, config.wait_window, config.breakeven),
                )
            )
        intent = predictor.on_access(access)
        if intent.source.value == "primary":
            counts["matched"] += 1
        else:
            counts["backup"] += 1
        busy_end = access.time + config.access_duration(access.block_count)
    # Trailing idle period: trains too (the table is saved at exit).
    if execution.end_time > busy_end:
        predictor.on_idle_end(
            IdleFeedback(
                busy_end, execution.end_time,
                classify_gap(
                    execution.end_time - busy_end,
                    config.wait_window, config.breakeven,
                ),
            )
        )
    predictor.end_execution(execution.end_time)
    counts["trained_after"] = len(predictor.table)
    return counts


def main() -> None:
    config = SimulationConfig()
    spec = mozilla_spec()
    table = PredictionTable()
    predictor = PCAPPredictor(
        table,
        wait_window=config.wait_window,
        backup_timeout=config.timeout,
    )

    print("Driving PCAP over five browsing sessions (mozilla model):")
    for session in range(5):
        execution = build_execution(spec, session, scale=0.8)
        counts = drive_session(predictor, config, execution)
        print(f"  session {session}: signature matches={counts['matched']:4d} "
              f"backup decisions={counts['backup']:4d} "
              f"table {counts['trained_before']:3d} -> "
              f"{counts['trained_after']:3d} entries")

    # §4.2: save the trained table into the application's initialization
    # file and reload it at the next start.
    with tempfile.TemporaryDirectory() as tmp:
        init_file = Path(tmp) / "mozilla.pcap"
        save_table_file(table, "mozilla", init_file)
        print(f"\nsaved table: {init_file.stat().st_size} bytes on disk "
              f"({len(table)} entries, 4 bytes each in the paper's encoding)")
        restored, application = load_table_file(init_file)
        print(f"reloaded table for {application!r}: {len(restored)} entries")

        # A fresh process with the reloaded table predicts immediately
        # (replaying the first session: its paths are all trained now).
        fresh = PCAPPredictor(
            restored,
            wait_window=config.wait_window,
            backup_timeout=config.timeout,
        )
        counts = drive_session(fresh, config, build_execution(spec, 0, scale=0.8))
        print(f"fresh process with reloaded table: "
              f"matches={counts['matched']} backup={counts['backup']}")


if __name__ == "__main__":
    main()
