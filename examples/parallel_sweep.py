"""Parallel parameter sweeps over the experiment-cell layer.

Sweeps the timeout predictor's timer across the six-application suite
twice — serially and on a process pool — shows that the results are
bit-identical, and prints per-cell progress while the parallel run is
underway.  This is the machinery behind ``--jobs`` on the CLI and the
ablation benchmarks.

Run:  python examples/parallel_sweep.py [jobs]

jobs defaults to every core (the sweep decomposes into
len(TIMEOUTS) × 6 application cells plus 6 shared baseline cells).
"""

import sys
import time

from repro import ParallelExperimentRunner, SimulationConfig, build_suite
from repro.predictors.registry import tp_spec
from repro.sim.parallel import stderr_progress
from repro.sim.sweep import render_sweep, sweep

TIMEOUTS = (2.0, 5.445, 10.0, 20.0, 60.0)


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    runner = ParallelExperimentRunner(
        build_suite(scale=0.3), SimulationConfig(), jobs=jobs
    )
    print(f"sweeping TP timeouts {TIMEOUTS} over {len(runner.suite)} "
          f"applications with {runner.jobs} worker(s)\n")
    # Pay the one-time cache-filtering pass up front so the serial and
    # parallel timings below compare pure simulation work.
    runner.prewarm()

    started = time.time()
    serial = sweep(
        runner, TIMEOUTS,
        make_spec=lambda t, cfg: tp_spec(cfg, timeout=t),
        jobs=1,
    )
    serial_seconds = time.time() - started

    started = time.time()
    parallel = sweep(
        runner, TIMEOUTS,
        make_spec=lambda t, cfg: tp_spec(cfg, timeout=t),
        jobs=runner.jobs,
        progress=stderr_progress,
    )
    parallel_seconds = time.time() - started

    print()
    print(render_sweep(parallel, "TP timeout sweep (parallel)"))
    print()
    print(f"serial   : {serial_seconds:6.2f} s")
    print(f"parallel : {parallel_seconds:6.2f} s  ({runner.jobs} workers)")
    print(f"identical: {serial == parallel}")


if __name__ == "__main__":
    main()
