"""Reproduce every table and figure of the paper's evaluation section.

Prints Tables 1-3 and the data series of Figures 6-10 next to the
paper's reported numbers, then runs the qualitative shape checks.

Run:  python examples/reproduce_paper.py [scale] [jobs]

scale defaults to 0.5 (a few minutes); use 1.0 for the full Table-1
magnitudes (as the benchmarks do).  jobs defaults to $REPRO_JOBS (or
serial); pass 0 to use every core — figure matrices then fan out
across worker processes with results identical to a serial run.
"""

import sys
import time

from repro import ParallelExperimentRunner, SimulationConfig, build_suite
from repro.analysis import (
    all_checks,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
    build_fig10,
    build_table1,
    build_table2,
    build_table3,
    render_accuracy_figure,
    render_checks,
    render_energy_figure,
    render_table1,
    render_table2,
    render_table3,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else None
    config = SimulationConfig()
    started = time.time()
    print(f"generating the six-application suite at scale {scale} ...")
    runner = ParallelExperimentRunner(
        build_suite(scale=scale), config, jobs=jobs
    )
    if runner.jobs > 1:
        print(f"running suite-level experiments on {runner.jobs} workers")

    print()
    print(render_table1(build_table1(runner)))
    print()
    print(render_table2(build_table2(config.disk)))
    print()

    fig6 = build_fig6(runner)
    print(render_accuracy_figure(fig6, "Figure 6: Local predictors"))
    print()
    fig7 = build_fig7(runner)
    print(render_accuracy_figure(fig7, "Figure 7: Global predictors"))
    print()
    fig8 = build_fig8(runner)
    print(render_energy_figure(fig8))
    print()
    fig9 = build_fig9(runner)
    print(render_accuracy_figure(
        fig9, "Figure 9: Optimizations", split_sources=True
    ))
    print()
    fig10 = build_fig10(runner)
    print(render_accuracy_figure(
        fig10, "Figure 10: Table reuse", split_sources=True
    ))
    print()
    print(render_table3(build_table3(runner)))

    print()
    print("Shape checks against the paper's claims:")
    print(render_checks(all_checks(fig6, fig7, fig8, fig9, fig10)))
    print(f"\ntotal time: {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
