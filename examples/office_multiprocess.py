"""Multi-process power management: the Global Shutdown Predictor (§5).

The writer workload runs a main process plus three Office helper
daemons.  This example contrasts:

* the *local* view (Figure 6): each process's predictor scored on its
  own access stream;
* the *global* view (Figure 7): the disk shuts down only when every
  live process agrees, and the last decider gets the attribution.

Run:  python examples/office_multiprocess.py
"""

from repro import ExperimentRunner, SimulationConfig, build_suite


def main() -> None:
    config = SimulationConfig()
    runner = ExperimentRunner(
        build_suite(scale=0.5, applications=("writer",)), config
    )

    execution = runner.suite["writer"].executions[0]
    print(f"writer execution 0: processes = {sorted(execution.pids)}")
    per_process = runner.filtered("writer")[0].per_process()
    for pid, accesses in sorted(per_process.items()):
        print(f"  pid {pid}: {len(accesses):4d} disk accesses")

    print("\nLocal vs global evaluation (PCAP):")
    local = runner.run_local("writer", "PCAP")
    global_ = runner.run_global("writer", "PCAP")
    print(f"  local : {local.stats.opportunities:4d} idle periods, "
          f"hit={local.stats.hit_fraction:6.1%} "
          f"miss={local.stats.miss_fraction:6.1%}")
    print(f"  global: {global_.stats.opportunities:4d} idle periods, "
          f"hit={global_.stats.hit_fraction:6.1%} "
          f"miss={global_.stats.miss_fraction:6.1%}")
    print("  (the global count is smaller: only periods where ALL")
    print("   processes are idle; misses are higher: one process's")
    print("   misprediction wastes a shutdown everyone agreed to)")

    print("\nWho makes the final decision (primary vs backup):")
    for name in ("TP", "LT", "PCAP"):
        result = runner.run_global("writer", name)
        stats = result.stats
        print(f"  {name:5s} hit_primary={stats.hit_primary_fraction:6.1%} "
              f"hit_backup={stats.hit_backup_fraction:6.1%} "
              f"shutdowns={result.shutdowns}")


if __name__ == "__main__":
    main()
