"""Quickstart: compare shutdown predictors on a generated workload.

Generates a down-scaled trace history of the paper's mozilla workload,
runs the timeout predictor, the Learning Tree, and PCAP over it, and
prints coverage, mispredictions, and energy savings.

Run:  python examples/quickstart.py
"""

from repro import ExperimentRunner, SimulationConfig, build_suite


def main() -> None:
    config = SimulationConfig()  # the paper's setup (Table 2 disk, 1 s
    #                              wait-window, 10 s timeout, 256 KB cache)
    print(f"breakeven time of the simulated disk: {config.breakeven:.2f} s")

    # scale=0.7 generates ~70% of the executions/actions of the paper's
    # trace collection; scale=1.0 reproduces Table 1 magnitudes.
    suite = build_suite(scale=0.7, applications=("mozilla",))
    runner = ExperimentRunner(suite, config)

    base = runner.run_global("mozilla", "Base")
    print(f"\nmozilla, {base.executions} executions, "
          f"{base.total_disk_accesses} disk accesses, "
          f"{base.stats.opportunities} shutdown opportunities")
    print(f"{'predictor':10s} {'coverage':>9s} {'misses':>8s} "
          f"{'savings':>8s}")
    for name in ("TP", "LT", "PCAP", "PCAPfh", "Ideal"):
        result = runner.run_global("mozilla", name)
        savings = 1.0 - result.energy / base.energy
        print(f"{name:10s} {result.stats.hit_fraction:9.1%} "
              f"{result.stats.miss_fraction:8.1%} {savings:8.1%}")

    print("\nPCAP shuts the disk down immediately on a recognized PC path;"
          "\nthe timeout predictor burns 10 s of idle power first — that"
          "\ngap is the paper's headline result.")


if __name__ == "__main__":
    main()
