"""Plugging a custom shutdown predictor into the framework.

Implements a "hybrid" predictor — PCAP's signature match gated by a
minimum observed-idle statistic per signature — as a user would extend
the library, wraps it in a PredictorSpec, and benchmarks it against the
built-ins on the xemacs workload.

Run:  python examples/custom_predictor.py
"""

from repro import ExperimentRunner, SimulationConfig, build_suite
from repro.cache import DiskAccess
from repro.core import PathSignature
from repro.predictors import (
    IdleClass,
    IdleFeedback,
    LocalPredictor,
    PredictorSource,
    PredictorSpec,
    ShutdownIntent,
)


class MinIdleGatedPredictor(LocalPredictor):
    """PCAP-style path signatures gated by the signature's worst case.

    Instead of a set of signatures, keep each signature's *minimum*
    observed following idle length; predict shutdown only when that
    minimum exceeds the breakeven time.  One bad experience permanently
    demotes a signature — more conservative than PCAP, fewer misses at
    some coverage cost.
    """

    name = "MinIdle"

    def __init__(self, shared_table: dict, *, wait_window: float,
                 backup_timeout: float, breakeven: float) -> None:
        self.table = shared_table  # signature -> min idle seconds
        self.wait_window = wait_window
        self.backup_timeout = backup_timeout
        self.breakeven = breakeven
        self._signature = PathSignature()
        self._pending = None

    def begin_execution(self, start_time: float) -> None:
        self._signature.reset()
        self._pending = None

    def initial_intent(self, start_time: float) -> ShutdownIntent:
        return ShutdownIntent(
            delay=self.backup_timeout, source=PredictorSource.BACKUP
        )

    def on_access(self, access: DiskAccess) -> ShutdownIntent:
        signature = self._signature.observe(access.pc)
        self._pending = signature
        minimum = self.table.get(signature)
        if minimum is not None and minimum > self.breakeven:
            return ShutdownIntent(
                delay=self.wait_window, source=PredictorSource.PRIMARY
            )
        return ShutdownIntent(
            delay=self.backup_timeout, source=PredictorSource.BACKUP
        )

    def on_idle_end(self, feedback: IdleFeedback) -> None:
        if feedback.idle_class == IdleClass.SUB_WINDOW:
            return
        if self._pending is not None:
            known = self.table.get(self._pending)
            self.table[self._pending] = (
                feedback.length if known is None
                else min(known, feedback.length)
            )
        if feedback.idle_class == IdleClass.LONG:
            self._signature.restart()


def make_spec(config: SimulationConfig) -> PredictorSpec:
    shared: dict = {}
    return PredictorSpec(
        name="MinIdle",
        local_factory=lambda pid: MinIdleGatedPredictor(
            shared,
            wait_window=config.wait_window,
            backup_timeout=config.timeout,
            breakeven=config.breakeven,
        ),
        table_size_fn=lambda: len(shared),
    )


def main() -> None:
    config = SimulationConfig()
    runner = ExperimentRunner(
        build_suite(scale=0.5, applications=("xemacs",)), config
    )
    base = runner.run_global("xemacs", "Base")
    print(f"{'predictor':10s} {'coverage':>9s} {'misses':>8s} "
          f"{'savings':>8s} {'table':>6s}")
    custom = make_spec(config)
    for predictor in ("TP", "PCAP", custom):
        result = runner.run_global("xemacs", predictor)
        savings = 1.0 - result.energy / base.energy
        table = result.table_size if result.table_size is not None else "-"
        print(f"{result.predictor:10s} {result.stats.hit_fraction:9.1%} "
              f"{result.stats.miss_fraction:8.1%} {savings:8.1%} "
              f"{table!s:>6s}")
    print("\nMinIdle trades coverage for near-zero repeat mispredictions —")
    print("one observed short idle permanently gates its signature.")


if __name__ == "__main__":
    main()
