"""The mplayer scenario: streaming, buffer drain, and energy breakdown.

mplayer is the paper's outlier — nearly all of its trace is busy
streaming with sub-second gaps, and the main energy-saving opportunity
is the idle period at the end while the movie plays out of the 8 MB
buffer.  This example shows:

* the Figure-8 energy components for the Base system vs PCAP;
* how the buffer-drain (trailing) idle period is learned across
  executions — invisible to a predictor that forgets its table;
* the §7 multi-state extension stacked on top.

Run:  python examples/media_player_session.py
"""

from repro import ExperimentRunner, SimulationConfig, build_suite


def main() -> None:
    config = SimulationConfig()
    runner = ExperimentRunner(
        build_suite(scale=0.5, applications=("mplayer",)), config
    )

    base = runner.run_global("mplayer", "Base")
    ledger = base.ledger
    print(f"mplayer, {base.executions} playbacks, "
          f"{base.total_disk_accesses} disk accesses")
    print("Base system energy breakdown (Figure 8 components):")
    for component, value in (
        ("busy I/O", ledger.busy),
        ("idle < breakeven", ledger.idle_short),
        ("idle > breakeven", ledger.idle_long),
    ):
        print(f"  {component:18s} {value:10.1f} J "
              f"({value / ledger.total:6.1%})")

    print("\nPredictors on the drain-dominated idle time:")
    print(f"{'predictor':12s} {'coverage':>9s} {'primary':>8s} "
          f"{'savings':>8s}")
    for name in ("TP", "PCAP", "PCAPa"):
        result = runner.run_global("mplayer", name)
        savings = 1.0 - result.energy / base.energy
        print(f"{name:12s} {result.stats.hit_fraction:9.1%} "
              f"{result.stats.hit_primary_fraction:8.1%} {savings:8.1%}")
    print("PCAPa (no table reuse) almost never predicts with its primary:")
    print("the drain signature is trained at exit and needs the saved table.")

    multi = runner.run_global("mplayer", "PCAP", multistate=True)
    savings = 1.0 - multi.energy / base.energy
    print(f"\nWith the multi-state extension (§7): savings={savings:.1%} "
          "(low-power idle during the wait windows between refill bursts).")


if __name__ == "__main__":
    main()
