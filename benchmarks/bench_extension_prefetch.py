"""Extension — PC-based I/O prefetching (§7's other "new direction").

Stride prefetching keyed on the program counter, measured as disk-access
reduction and prefetch accuracy over the suite.  Streaming call sites
(mplayer's refills, content downloads) have stable strides and prefetch
almost perfectly; irregular call sites never gain confidence and cost
nothing — the same per-call-site precision argument the paper makes for
shutdown prediction.
"""

from conftest import ABLATION_SCALE, run_once

from repro.cache import filter_execution
from repro.cache.prefetch import PrefetchingPageCache
from repro.config import SimulationConfig
from repro.workloads import build_suite


def test_extension_prefetch(benchmark):
    suite = build_suite(scale=ABLATION_SCALE)
    config = SimulationConfig()

    def sweep():
        results = {}
        for app, trace in suite.items():
            plain = prefetched = fetched = hits = 0
            for execution in trace.executions:
                plain += len(filter_execution(execution, config.cache).accesses)
                cache = PrefetchingPageCache(config.cache, depth=4)
                prefetched += len(
                    filter_execution(execution, cache=cache).accesses
                )
                fetched += cache.prefetched_blocks
                hits += cache.prefetch_hits
            accuracy = hits / fetched if fetched else 0.0
            results[app] = (plain, prefetched, accuracy)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Extension: PC-based stride prefetching (scale 0.5, depth 4)")
    print(f"  {'app':9s} {'disk accesses':>13s} {'with prefetch':>13s} "
          f"{'reduction':>9s} {'accuracy':>9s}")
    for app, (plain, pf, accuracy) in results.items():
        reduction = 1.0 - pf / plain if plain else 0.0
        print(f"  {app:9s} {plain:13d} {pf:13d} {reduction:9.1%} "
              f"{accuracy:9.1%}")

    # The streaming workload benefits most; nothing regresses.
    mplayer_plain, mplayer_pf, mplayer_acc = results["mplayer"]
    assert mplayer_pf < 0.7 * mplayer_plain
    assert mplayer_acc > 0.5
    for app, (plain, pf, _acc) in results.items():
        assert pf <= plain * 1.02, app
