"""Fused sweep kernel vs the classic per-cell sweep path.

A genuine pytest-benchmark measurement of the paper's parameter-sweep
workload (the TP timeout ladder plus the PCAP family — the variant set
behind Figure 7) over the mozilla trace, run two ways:

* per cell — one full simulation pass per predictor variant, the way
  ``sweep()`` worked before the fused kernel existed, and
* fused — one streaming pass that builds the predictor-independent
  replay tape per execution and evaluates every variant against it.

Both paths produce bit-identical :class:`ApplicationResult` rows (the
equivalence suite in ``tests/test_fused.py`` and the CI gate enforce
this); the benchmark exists to show *why* the fused path is the default
and to catch regressions in its speedup.
"""

import pytest

from repro.config import SimulationConfig
from repro.perf import sweep_variant_specs
from repro.sim.experiment import ExperimentRunner
from repro.sim.fused import run_fused_application
from repro.workloads import build_suite

from conftest import ABLATION_SCALE


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


@pytest.fixture(scope="module")
def runner(config):
    runner = ExperimentRunner(
        build_suite(scale=ABLATION_SCALE, applications=("mozilla",)), config
    )
    # Warm the filter/schedule memos so both benches measure simulation
    # work only, not the shared cache-filtering pass.
    runner.filtered("mozilla")
    return runner


def test_sweep_per_cell(benchmark, runner, config):
    specs = sweep_variant_specs(config)

    def run():
        return [
            runner.run_global("mozilla", spec)
            for spec in sweep_variant_specs(config)
        ]

    results = benchmark(run)
    assert len(results) == len(specs)
    print(f"\n  per-cell sweep: {len(specs)} variants, one pass each")


def test_sweep_fused(benchmark, runner, config):
    specs = sweep_variant_specs(config)

    def run():
        return run_fused_application(
            runner, "mozilla", sweep_variant_specs(config)
        )

    results = benchmark(run)
    assert len(results) == len(specs)
    # The fused pass must agree with the per-cell path bit for bit.
    classic = [
        runner.run_global("mozilla", spec)
        for spec in sweep_variant_specs(config)
    ]
    assert results == classic
    print(f"\n  fused sweep: {len(specs)} variants, single pass")
