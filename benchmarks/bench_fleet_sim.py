"""Device-batched fleet engine vs the per-device simulation loop.

A genuine pytest-benchmark measurement of the fleet workload — a
1000-device population, every device replaying the mozilla trace under
PCAP — run two ways:

* per device — one full ``run_global`` pass per device, the way a
  naive fleet evaluation would loop (timed on a small sample and
  projected linearly: the loop is independent identical runs, so
  device count is a pure multiplier), and
* batched — :func:`repro.sim.fleet.run_fleet`: one fused replay per
  unique application, scattered across the device population's
  columnar state rows.

Both produce bit-identical per-device results in ``tables="sharded"``
mode (``tests/test_fleet.py`` and the CI fleet-smoke gate enforce
this); the benchmark exists to show why the fleet path exists at all
and to catch regressions in its batching speedup (gated at
:data:`repro.perf.FLEET_SPEEDUP_FLOOR` by ``repro bench``).
"""

import pytest

from repro.config import SimulationConfig
from repro.perf import FLEET_DEVICES, FLEET_LOOP_SAMPLE
from repro.sim.experiment import ExperimentRunner
from repro.sim.fleet import replicate_devices, run_fleet
from repro.workloads import build_suite

from conftest import ABLATION_SCALE


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


@pytest.fixture(scope="module")
def runner(config):
    runner = ExperimentRunner(
        build_suite(scale=ABLATION_SCALE, applications=("mozilla",)), config
    )
    # Warm the filter/schedule memos so both benches measure simulation
    # work only, not the shared cache-filtering pass.
    runner.filtered("mozilla")
    return runner


@pytest.fixture(scope="module")
def devices():
    return replicate_devices(("mozilla",), FLEET_DEVICES)


def test_fleet_per_device_loop(benchmark, runner, devices):
    sample = devices[:FLEET_LOOP_SAMPLE]

    def run():
        return [
            runner.run_global(device.application, "PCAP")
            for device in sample
        ]

    results = benchmark(run)
    assert len(results) == len(sample)
    print(
        f"\n  per-device loop: {len(sample)} of {len(devices)} devices "
        f"timed (linear in device count)"
    )


def test_fleet_batched(benchmark, runner, devices):
    def run():
        return run_fleet(runner, devices, ("PCAP",))

    result = benchmark(run)
    lane = result.lane("PCAP")
    assert lane.devices == FLEET_DEVICES
    # The batched fleet must agree with the loop device for device.
    solo = runner.run_global("mozilla", "PCAP")
    first = lane.device_result(0)
    assert first.ledger == solo.ledger
    assert first.stats == solo.stats
    print(f"\n  batched fleet: {FLEET_DEVICES} devices, one fused pass")
