"""Simulator performance: disk accesses processed per second.

A genuine pytest-benchmark measurement (multiple rounds) of the two hot
loops — cache filtering and the global simulation — over a fixed mozilla
execution.
"""

import pytest

from repro.cache.filter import filter_execution
from repro.config import SimulationConfig
from repro.predictors.registry import make_spec
from repro.sim.engine import run_global_execution
from repro.workloads import build_application


@pytest.fixture(scope="module")
def execution():
    return build_application("mozilla", scale=1.0).executions[0]


@pytest.fixture(scope="module")
def config():
    return SimulationConfig()


@pytest.fixture(scope="module")
def filtered(execution, config):
    return filter_execution(execution, config.cache)


def test_throughput_cache_filter(benchmark, execution, config):
    result = benchmark(lambda: filter_execution(execution, config.cache))
    assert result.accesses
    events = len(execution.io_events)
    print(f"\n  cache filter: {events} events/round")


def test_throughput_global_simulation(benchmark, execution, filtered, config):
    def run():
        spec = make_spec("PCAPfh", config)
        return run_global_execution(execution, filtered, spec, config)

    result = benchmark(run)
    assert result.disk_accesses == len(filtered.accesses)
    print(f"\n  global sim: {result.disk_accesses} disk accesses/round")
