"""Extension — learning-augmented predictors on the desktop suite.

Runs the three learned policies (Q-DPM, learned ski rental, PI
feedback) alongside the paper's predictors over the traced desktop
applications: accuracy (hit/miss) and energy savings versus the
always-on Base, the same axes as Figures 7 and 8.

Expected shape: the ski-rental consumer of the PCAP table inherits
most of PCAP's coverage advantage over TP and nearly all of its energy
savings; Q-DPM and the PI controller — which never see the PC signal —
still cover more opportunities than the static timeout, at the cost of
exploration / transient mispredictions; every policy lands strictly
between Base and the oracle.  (Their structural advantages show up on
the adversarial workloads — see ``bench_predictor_envelope``.)
"""

from conftest import run_once

from repro.sim.metrics import PredictionStats

PREDICTORS = ("TP", "PCAP", "QDPM", "SKI", "PI", "Ideal")


def test_learned_predictors(benchmark, ablation_runner):
    def sweep():
        base = sum(
            ablation_runner.run_global(app, "Base").energy
            for app in ablation_runner.applications
        )
        results = {}
        for name in PREDICTORS:
            stats = PredictionStats()
            energy = 0.0
            for app in ablation_runner.applications:
                result = ablation_runner.run_global(app, name)
                stats.merge(result.stats)
                energy += result.energy
            results[name] = (
                stats.hit_fraction,
                stats.miss_fraction,
                1.0 - energy / base,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Extension: learned predictors (global, scale 0.5)")
    for name, (hit, miss, savings) in results.items():
        print(f"  {name:5s} hit={hit:6.1%} miss={miss:6.1%} "
              f"savings={savings:6.1%}")

    # Every learned policy saves energy over Base and the oracle bounds
    # them all from above.
    for name in ("QDPM", "SKI", "PI"):
        assert 0.0 < results[name][2] <= results["Ideal"][2]

    # Consistency: the ski-rental consumer inherits the advice table's
    # coverage advantage over the timeout floor and keeps nearly all of
    # PCAP's energy savings.
    assert results["SKI"][0] > results["TP"][0]
    assert results["SKI"][2] > results["PCAP"][2] - 0.02

    # Q-DPM covers more opportunities than the static timeout from idle
    # history alone; its exploration cost stays a bounded energy tax.
    assert results["QDPM"][0] > results["TP"][0]
    assert results["QDPM"][2] > 0.9 * results["TP"][2]

    # The PI controller tracks the timeout policy it modulates.
    assert results["PI"][2] > 0.9 * results["TP"][2]
