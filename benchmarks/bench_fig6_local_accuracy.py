"""Figure 6 — Local shutdown predictor accuracy.

Per-process evaluation of TP, LT, and PCAP over every application,
printing the hit / not-predicted / miss fractions the paper's stacked
bars show, plus the across-application averages quoted in §6.1.
"""

from conftest import run_once

from repro.analysis.compare import fig6_checks, render_checks
from repro.analysis.figures import average_bars, build_fig6
from repro.analysis.paper_data import PAPER_FIG6_AVERAGES
from repro.analysis.report import render_accuracy_figure


def test_fig6_local_accuracy(benchmark, full_runner):
    figure = run_once(benchmark, lambda: build_fig6(full_runner))
    print()
    print(render_accuracy_figure(
        figure, "Figure 6: Local shutdown predictor (measured)"
    ))
    for name, paper in PAPER_FIG6_AVERAGES.items():
        avg = average_bars(figure, name)
        print(f"  paper     {name:7s} hit={paper.hit:6.1%} "
              f"miss={paper.miss:6.1%}")
    checks = fig6_checks(figure)
    print(render_checks(checks))
    assert all(check.passed for check in checks), render_checks(checks)
