"""Extension — classic DPM predictors from the background section (§2).

Runs Hwang & Wu's exponential average (EXP), the Douglis-style adaptive
timeout (AT), and the confidence-gated PCAPc alongside the paper's
predictors for context.  The paper's survey conclusion — dynamic
predictors before PCAP traded accuracy for immediacy — shows up as
EXP/AT landing between TP and PCAP on coverage with more misses.
"""

from conftest import run_once

from repro.sim.metrics import PredictionStats

PREDICTORS = ("TP", "EXP", "AT", "LT", "PCAP", "PCAPc")


def test_extension_classic_predictors(benchmark, ablation_runner):
    def sweep():
        results = {}
        for name in PREDICTORS:
            stats = PredictionStats()
            energy = 0.0
            base = 0.0
            for app in ablation_runner.applications:
                result = ablation_runner.run_global(app, name)
                stats.merge(result.stats)
                energy += result.energy
                base += ablation_runner.run_global(app, "Base").energy
            results[name] = (
                stats.hit_fraction,
                stats.miss_fraction,
                1.0 - energy / base,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Extension: classic predictors (global, scale 0.5)")
    for name, (hit, miss, savings) in results.items():
        print(f"  {name:6s} hit={hit:6.1%} miss={miss:6.1%} "
              f"savings={savings:6.1%}")

    # PCAP still leads the online predictors on coverage.
    assert results["PCAP"][0] >= max(
        results[name][0] for name in ("TP", "EXP", "AT")
    ) - 0.02
    # Confidence gating cannot increase mispredictions.
    assert results["PCAPc"][1] <= results["PCAP"][1] + 0.01
