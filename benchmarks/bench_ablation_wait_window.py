"""Ablation — the sliding wait-window (§4.1.1).

Sweeps the wait-window length: without a window PCAP fires on every
matched signature the moment the burst pauses (subpath aliasing misses
explode); beyond ~1-2 s the extra waiting costs idle energy without
buying accuracy — the paper's rationale for 1 s.
"""

from conftest import run_once

from repro.analysis.figures import average_bars, build_fig7
from repro.config import SimulationConfig

WINDOWS = (0.2, 0.5, 1.0, 2.0, 4.0)


def test_ablation_wait_window(benchmark, ablation_runner):
    def sweep():
        results = {}
        for window in WINDOWS:
            runner = ablation_runner.with_config(
                SimulationConfig(wait_window=window)
            )
            figure = build_fig7(runner, predictors=("PCAP",))
            results[window] = average_bars(figure, "PCAP")
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: sliding wait-window (PCAP, global, scale 0.5)")
    for window, bar in results.items():
        print(f"  window={window:4.1f}s hit={bar.hit:6.1%} "
              f"miss={bar.miss:6.1%} notpred={bar.not_predicted:6.1%}")

    # Tiny windows mispredict more than the paper's 1 s window.
    assert results[0.2].miss >= results[1.0].miss - 0.01
    # Very large windows cannot increase mispredictions.
    assert results[4.0].miss <= results[0.2].miss + 0.01
