"""Table 3 — Storage requirements of the prediction tables.

Runs every PCAP variant over every application's full trace history with
table reuse and reports the final entry counts next to the paper's.
"""

from conftest import run_once

from repro.analysis.report import render_table3
from repro.analysis.tables import build_table3
from repro.core.table import PredictionTable, storage_bytes


def test_table3_storage(benchmark, full_runner):
    rows = run_once(benchmark, lambda: build_table3(full_runner))
    print()
    print(render_table3(rows))

    by_app = {row.application: row.entries for row in rows}

    # Shape: extending the key with history and/or fd never shrinks the
    # table (keys fragment), matching the paper's per-row monotonicity.
    for name, entries in by_app.items():
        assert entries["PCAPh"] >= entries["PCAP"], name
        assert entries["PCAPf"] >= entries["PCAP"], name
        assert entries["PCAPfh"] >= max(
            entries["PCAPh"], entries["PCAPf"]
        ) - 2, name

    # Shape: mozilla needs by far the largest table; tables stay small
    # (hundreds of bytes, the paper's storage argument).
    assert max(by_app, key=lambda n: by_app[n]["PCAPfh"]) == "mozilla"
    for entries in by_app.values():
        table = PredictionTable()
        for i in range(entries["PCAPfh"]):
            table.train(i)
        assert storage_bytes(table) < 4096  # "storage is not a problem"
