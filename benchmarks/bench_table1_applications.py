"""Table 1 — Applications and execution details.

Regenerates the suite statistics (executions, global/local idle periods,
total I/Os) and prints them next to the paper's values.
"""

from conftest import run_once

from repro.analysis.paper_data import PAPER_TABLE1
from repro.analysis.report import render_table1
from repro.analysis.tables import build_table1


def test_table1_applications(benchmark, full_runner):
    rows = run_once(benchmark, lambda: build_table1(full_runner))
    print()
    print(render_table1(rows))

    by_app = {row.application: row for row in rows}
    # Execution counts are exact by construction.
    for name, (executions, *_rest) in PAPER_TABLE1.items():
        assert by_app[name].executions == executions

    # Idle-period and I/O magnitudes land within a factor of ~1.6 of the
    # paper (synthetic traces; shape, not testbed-exact counts).
    for name, (_e, global_idle, local_idle, ios) in PAPER_TABLE1.items():
        row = by_app[name]
        assert 0.5 * global_idle <= row.global_idle_periods <= 1.6 * global_idle, name
        assert 0.5 * local_idle <= row.local_idle_periods <= 1.7 * local_idle, name
        assert 0.6 * ios <= row.total_ios <= 1.4 * ios, name

    # Shape: mplayer has the largest I/O volume, nedit the smallest;
    # local counts never fall below global counts.
    volumes = {name: row.total_ios for name, row in by_app.items()}
    assert max(volumes, key=volumes.get) == "mplayer"
    assert min(volumes, key=volumes.get) == "nedit"
    for row in rows:
        assert row.local_idle_periods >= row.global_idle_periods
