"""Ablation — Learning Tree history depth (§6.1).

The paper: "we have used a history length of eight in LT.  Longer
history lengths does not improve accuracy.  Shorter history may result
in more hits, but misprediction may also increase."
"""

from conftest import run_once

from repro.predictors.registry import lt_spec
from repro.sim.metrics import PredictionStats

DEPTHS = (1, 2, 4, 8, 12)


def test_ablation_lt_depth(benchmark, ablation_runner):
    def sweep():
        results = {}
        for depth in DEPTHS:
            stats = PredictionStats()
            for app in ablation_runner.applications:
                spec = lt_spec(ablation_runner.config, max_depth=depth)
                stats.merge(ablation_runner.run_global(app, spec).stats)
            results[depth] = (stats.hit_fraction, stats.miss_fraction)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: LT history depth (global, scale 0.5)")
    for depth, (hit, miss) in results.items():
        print(f"  depth={depth:2d}  hit={hit:6.1%}  miss={miss:6.1%}")

    # Depth 8 vs 12: no meaningful accuracy change (paper's claim).
    assert abs(results[12][0] - results[8][0]) < 0.05
    assert abs(results[12][1] - results[8][1]) < 0.05
