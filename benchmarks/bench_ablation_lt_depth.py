"""Ablation — Learning Tree history depth (§6.1).

The paper: "we have used a history length of eight in LT.  Longer
history lengths does not improve accuracy.  Shorter history may result
in more hits, but misprediction may also increase."

Runs through the parallel sweep layer (one cell per depth × app).
"""

from conftest import run_once

from repro.predictors.registry import lt_spec
from repro.sim.sweep import sweep

DEPTHS = (1, 2, 4, 8, 12)


def test_ablation_lt_depth(benchmark, ablation_runner, jobs):
    def run():
        points = sweep(
            ablation_runner,
            DEPTHS,
            make_spec=lambda depth, cfg: lt_spec(cfg, max_depth=depth),
            jobs=jobs,
        )
        return {point.value: point for point in points}

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: LT history depth (global, scale 0.5, jobs={jobs})")
    for depth, point in results.items():
        print(f"  depth={depth:2d}  hit={point.hit_fraction:6.1%}  "
              f"miss={point.miss_fraction:6.1%}")

    # Depth 8 vs 12: no meaningful accuracy change (paper's claim).
    assert abs(results[12].hit_fraction - results[8].hit_fraction) < 0.05
    assert abs(results[12].miss_fraction - results[8].miss_fraction) < 0.05
