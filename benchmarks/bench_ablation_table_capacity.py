"""Ablation — prediction-table capacity with LRU replacement (§4.2).

The paper: "some storage limit can be imposed and an LRU replacement of
old signatures can be used."  Sweeps a hard capacity: a few dozen
entries suffice (Table 3 magnitudes); starving the table forces the
backup to carry the load.
"""

from conftest import run_once

from repro.core.variants import pcap
from repro.predictors.registry import pcap_spec
from repro.sim.metrics import PredictionStats

CAPACITIES = (4, 16, 64, 256, None)


def test_ablation_table_capacity(benchmark, ablation_runner):
    def sweep():
        results = {}
        for capacity in CAPACITIES:
            stats = PredictionStats()
            for app in ablation_runner.applications:
                spec = pcap_spec(
                    ablation_runner.config, pcap(table_capacity=capacity)
                )
                stats.merge(ablation_runner.run_global(app, spec).stats)
            results[capacity] = (
                stats.hit_primary_fraction,
                stats.hit_backup_fraction,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: PCAP table capacity (global, scale 0.5)")
    for capacity, (primary, backup) in results.items():
        label = "inf" if capacity is None else str(capacity)
        print(f"  capacity={label:>4s} hitP={primary:6.1%} hitB={backup:6.1%}")

    # A starved table pushes hits from the primary onto the backup.
    assert results[4][0] <= results[None][0] + 0.01
    # Table-3-sized capacity performs like unbounded.
    assert abs(results[256][0] - results[None][0]) < 0.03
