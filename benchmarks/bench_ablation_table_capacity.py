"""Ablation — prediction-table capacity with LRU replacement (§4.2).

The paper: "some storage limit can be imposed and an LRU replacement of
old signatures can be used."  Sweeps a hard capacity: a few dozen
entries suffice (Table 3 magnitudes); starving the table forces the
backup to carry the load.

Runs through the parallel sweep layer (one cell per capacity × app).
"""

from conftest import run_once

from repro.core.variants import pcap
from repro.predictors.registry import pcap_spec
from repro.sim.sweep import sweep

CAPACITIES = (4, 16, 64, 256, None)


def test_ablation_table_capacity(benchmark, ablation_runner, jobs):
    def run():
        points = sweep(
            ablation_runner,
            CAPACITIES,
            make_spec=lambda cap, cfg: pcap_spec(
                cfg, pcap(table_capacity=cap)
            ),
            jobs=jobs,
        )
        return {point.value: point for point in points}

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: PCAP table capacity (global, scale 0.5, jobs={jobs})")
    for capacity, point in results.items():
        label = "inf" if capacity is None else str(capacity)
        print(f"  capacity={label:>4s} hitP={point.hit_primary_fraction:6.1%} "
              f"hitB={point.hit_backup_fraction:6.1%}")

    # A starved table pushes hits from the primary onto the backup.
    assert (results[4].hit_primary_fraction
            <= results[None].hit_primary_fraction + 0.01)
    # Table-3-sized capacity performs like unbounded.
    assert abs(results[256].hit_primary_fraction
               - results[None].hit_primary_fraction) < 0.03
