"""Ablation — file-cache size (§6's 256 KB cache).

The paper filters traces through a 256 KB Linux-style cache.  Sweeps the
capacity: a bigger cache absorbs more re-reads, thinning disk traffic
and (slightly) lengthening idle periods.
"""

from conftest import ABLATION_SCALE, run_once

from repro.cache.page_cache import CacheConfig
from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.workloads import build_suite

SIZES_KB = (64, 256, 1024, 4096)


def test_ablation_cache_size(benchmark):
    suite = build_suite(scale=ABLATION_SCALE)

    def sweep():
        results = {}
        for size_kb in SIZES_KB:
            config = SimulationConfig(
                cache=CacheConfig(capacity_bytes=size_kb * 1024)
            )
            runner = ExperimentRunner(suite, config)
            accesses = 0
            opportunities = 0
            for app in runner.applications:
                result = runner.run_global(app, "Base")
                accesses += result.total_disk_accesses
                opportunities += result.stats.opportunities
            results[size_kb] = (accesses, opportunities)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: file-cache capacity (suite-wide, scale 0.5)")
    for size_kb, (accesses, opportunities) in results.items():
        print(f"  cache={size_kb:5d}KB disk accesses={accesses:7d} "
              f"idle periods={opportunities:4d}")

    sizes = sorted(results)
    traffic = [results[s][0] for s in sizes]
    # Disk traffic is monotonically non-increasing in cache size.
    assert all(a >= b for a, b in zip(traffic, traffic[1:]))
    # Idle-period structure stays in the same ballpark (the think times,
    # not the cache, define the opportunities).
    opp = [results[s][1] for s in sizes]
    assert max(opp) <= 1.3 * min(opp)
