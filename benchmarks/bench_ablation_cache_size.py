"""Ablation — file-cache size (§6's 256 KB cache).

The paper filters traces through a 256 KB Linux-style cache.  Sweeps the
capacity: a bigger cache absorbs more re-reads, thinning disk traffic
and (slightly) lengthening idle periods.

Runs through the parallel sweep layer; because the swept predictor *is*
``Base``, each (size × app) cell doubles as its own baseline (no
redundant baseline simulations).
"""

from conftest import ABLATION_SCALE, JOBS, run_once

from repro.cache.page_cache import CacheConfig
from repro.config import SimulationConfig
from repro.sim.parallel import ParallelExperimentRunner
from repro.sim.sweep import sweep
from repro.workloads import build_suite

SIZES_KB = (64, 256, 1024, 4096)


def test_ablation_cache_size(benchmark):
    runner = ParallelExperimentRunner(
        build_suite(scale=ABLATION_SCALE), jobs=JOBS
    )

    def run():
        points = sweep(
            runner,
            SIZES_KB,
            make_config=lambda size_kb: SimulationConfig(
                cache=CacheConfig(capacity_bytes=size_kb * 1024)
            ),
            predictor="Base",
            jobs=JOBS,
        )
        return {point.value: point for point in points}

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: file-cache capacity (suite-wide, scale 0.5, "
          f"jobs={JOBS})")
    for size_kb, point in results.items():
        print(f"  cache={size_kb:5d}KB disk accesses={point.disk_accesses:7d} "
              f"idle periods={point.opportunities:4d}")

    sizes = sorted(results)
    traffic = [results[s].disk_accesses for s in sizes]
    # Disk traffic is monotonically non-increasing in cache size.
    assert all(a >= b for a, b in zip(traffic, traffic[1:]))
    # Idle-period structure stays in the same ballpark (the think times,
    # not the cache, define the opportunities).
    opportunities = [results[s].opportunities for s in sizes]
    assert max(opportunities) <= 1.3 * min(opportunities)
