"""Figure 9 — Predictor optimizations (history and file descriptors).

PCAP / PCAPh / PCAPf / PCAPfh global accuracy with the primary/backup
attribution split of the paper's bars.
"""

from conftest import run_once

from repro.analysis.compare import fig9_checks, render_checks
from repro.analysis.figures import average_bars, build_fig9
from repro.analysis.paper_data import (
    PAPER_FIG9_AVERAGES,
    PAPER_FIG9_MOZILLA_MISS,
)
from repro.analysis.report import render_accuracy_figure


def test_fig9_optimizations(benchmark, full_runner):
    figure = run_once(benchmark, lambda: build_fig9(full_runner))
    print()
    print(render_accuracy_figure(
        figure, "Figure 9: Predictor optimizations (measured)",
        split_sources=True,
    ))
    for name, paper in PAPER_FIG9_AVERAGES.items():
        avg = average_bars(figure, name)
        print(f"  paper     {name:7s} hit={paper.hit:6.1%} "
              f"miss={paper.miss:6.1%}   (measured hit={avg.hit:6.1%} "
              f"miss={avg.miss:6.1%})")
    moz = figure.get("mozilla")
    if moz:
        print(
            f"  mozilla miss: PCAP {moz['PCAP'].miss:.1%} -> PCAPh "
            f"{moz['PCAPh'].miss:.1%} "
            f"(paper {PAPER_FIG9_MOZILLA_MISS['PCAP']:.0%} -> "
            f"{PAPER_FIG9_MOZILLA_MISS['PCAPh']:.0%})"
        )
    checks = fig9_checks(figure)
    print(render_checks(checks))
    assert all(check.passed for check in checks), render_checks(checks)
