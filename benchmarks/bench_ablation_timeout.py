"""Ablation — the timeout value (§6.1/§6.3).

Sweeps TP's timer: "Lower timer values would increase mispredictions
significantly and much higher timeout would reduce the energy savings
considerably."  Includes the breakeven timeout (Karlin's 2-competitive
choice) the paper evaluates in §6.3.
"""

from conftest import run_once

from repro.analysis.figures import average_savings, build_fig8
from repro.config import SimulationConfig
from repro.predictors.registry import tp_spec
from repro.sim.metrics import PredictionStats

TIMEOUTS = (2.0, 5.445, 10.0, 20.0, 60.0)


def test_ablation_timeout(benchmark, ablation_runner):
    def sweep():
        results = {}
        base_energy = {
            app: ablation_runner.run_global(app, "Base").energy
            for app in ablation_runner.applications
        }
        for timeout in TIMEOUTS:
            stats = PredictionStats()
            savings = []
            for app in ablation_runner.applications:
                spec = tp_spec(ablation_runner.config, timeout=timeout)
                result = ablation_runner.run_global(app, spec)
                stats.merge(result.stats)
                savings.append(1.0 - result.energy / base_energy[app])
            results[timeout] = (
                sum(savings) / len(savings),
                stats.miss_fraction,
                stats.hit_fraction,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: TP timeout (global, scale 0.5)")
    for timeout, (savings, miss, hit) in results.items():
        print(f"  timeout={timeout:6.2f}s savings={savings:6.1%} "
              f"hit={hit:6.1%} miss={miss:6.1%}")

    # Aggressive timers mispredict more (§6.3: 12% at breakeven timeout).
    assert results[2.0][1] >= results[10.0][1]
    assert results[5.445][1] >= results[10.0][1]
    # Long timers burn the savings away.
    assert results[60.0][0] <= results[10.0][0]
