"""Ablation — the timeout value (§6.1/§6.3).

Sweeps TP's timer: "Lower timer values would increase mispredictions
significantly and much higher timeout would reduce the energy savings
considerably."  Includes the breakeven timeout (Karlin's 2-competitive
choice) the paper evaluates in §6.3.

Runs through the parallel sweep layer: one (timeout × application) cell
per simulation plus one shared ``Base`` baseline per application,
executed across the ``jobs`` fixture's worker processes.
"""

from conftest import run_once

from repro.predictors.registry import tp_spec
from repro.sim.sweep import sweep

TIMEOUTS = (2.0, 5.445, 10.0, 20.0, 60.0)


def test_ablation_timeout(benchmark, ablation_runner, jobs):
    def run():
        points = sweep(
            ablation_runner,
            TIMEOUTS,
            make_spec=lambda t, cfg: tp_spec(cfg, timeout=t),
            jobs=jobs,
        )
        return {point.value: point for point in points}

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: TP timeout (global, scale 0.5, jobs={jobs})")
    for timeout, point in results.items():
        print(f"  timeout={timeout:6.2f}s savings={point.savings:6.1%} "
              f"hit={point.hit_fraction:6.1%} "
              f"miss={point.miss_fraction:6.1%}")

    # Aggressive timers mispredict more (§6.3: 12% at breakeven timeout).
    assert results[2.0].miss_fraction >= results[10.0].miss_fraction
    assert results[5.445].miss_fraction >= results[10.0].miss_fraction
    # Long timers burn the savings away.
    assert results[60.0].savings <= results[10.0].savings
