"""Extension — PC-based file buffer management (§7's "new direction").

"PC-based techniques ... suitable for many other aspects of the
operating system, such as file buffer management and I/O prefetching."
Compares the plain LRU page cache against the PC-aware dead-block-first
cache on the suite: the loading PC separates streamed-once content
(mplayer refills, page downloads) from re-used working sets (libraries,
indices), so the PC-aware cache hits more with the same 256 KB.
"""

from conftest import ABLATION_SCALE, run_once

from repro.cache import PCAwarePageCache, filter_execution
from repro.config import SimulationConfig
from repro.traces.events import ExitEvent
from repro.traces.trace import ExecutionTrace
from repro.workloads import build_suite

import sys
sys.path.insert(0, "tests")
from tests.helpers import io_event  # noqa: E402

HOT_PC = 0x100
SCAN_PC = 0x200


def _scan_workload() -> ExecutionTrace:
    """An adversarial scan: a small hot set re-read between long
    streaming sweeps (database scan / media indexing pattern).  LRU
    loses the hot set to every sweep; a dead-block-aware policy keeps
    it."""
    events = []
    t = 0.0
    hot_blocks = list(range(16))
    block = 10_000
    for round_ in range(60):
        # The working set is processed (read, then re-read while being
        # used) each round — the double touch is what lets a reuse-aware
        # policy learn that HOT_PC's blocks come back.
        for hot in hot_blocks:
            for _ in range(2):
                t += 0.01
                events.append(
                    io_event(t, pc=HOT_PC, inode=1, block_start=hot)
                )
        for _ in range(120):  # stream fresh blocks (a scan sweep)
            t += 0.01
            block += 1
            events.append(
                io_event(t, pc=SCAN_PC, inode=2, block_start=block)
            )
    events.append(ExitEvent(time=t + 0.01, pid=100))
    execution = ExecutionTrace(
        "scan", 0, events, initial_pids=frozenset({100})
    )
    execution.validate()
    return execution


def _hit_ratio(execution, config, pc_aware: bool) -> float:
    cache = PCAwarePageCache(config.cache) if pc_aware else None
    result = filter_execution(
        execution, config.cache if not pc_aware else None, cache=cache
    )
    return result.cache_stats.read_hit_ratio


def test_extension_pc_cache(benchmark):
    suite = build_suite(scale=ABLATION_SCALE)
    config = SimulationConfig()

    def sweep():
        results = {}
        for app, trace in suite.items():
            lru_hits = lru_total = pc_hits = pc_total = 0
            for execution in trace.executions:
                stats = filter_execution(execution, config.cache).cache_stats
                lru_hits += stats.read_hits
                lru_total += stats.read_hits + stats.read_misses
                stats = filter_execution(
                    execution, cache=PCAwarePageCache(config.cache)
                ).cache_stats
                pc_hits += stats.read_hits
                pc_total += stats.read_hits + stats.read_misses
            results[app] = (lru_hits / lru_total, pc_hits / pc_total)
        scan = _scan_workload()
        results["scan*"] = (
            _hit_ratio(scan, config, pc_aware=False),
            _hit_ratio(scan, config, pc_aware=True),
        )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Extension: PC-aware cache eviction (scale 0.5, 256 KB cache)")
    print("  (scan* = adversarial hot-set-vs-scan microbenchmark)")
    for app, (lru, pc) in results.items():
        print(f"  {app:9s} LRU hit={lru:6.1%}  PC-aware hit={pc:6.1%} "
              f"({pc - lru:+.1%})")

    # On the desktop suite the two policies are equivalent: the apps
    # re-read their hot files within each burst, so LRU already keeps
    # them resident (an honest negative result for these workloads).
    suite_deltas = [
        pc - lru for app, (lru, pc) in results.items() if app != "scan*"
    ]
    assert all(abs(delta) < 0.02 for delta in suite_deltas)
    # On the scan pattern — the workload this policy targets — the
    # PC-aware cache keeps the hot set and wins decisively.
    scan_lru, scan_pc = results["scan*"]
    assert scan_pc > scan_lru + 0.05
