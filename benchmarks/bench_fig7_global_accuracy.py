"""Figure 7 — Global shutdown predictor accuracy.

The complete system-wide predictor (per-process locals combined by the
Global Shutdown Predictor) over every application's merged disk stream.
"""

from conftest import run_once

from repro.analysis.compare import fig7_checks, render_checks
from repro.analysis.figures import average_bars, build_fig7
from repro.analysis.paper_data import PAPER_FIG7_AVERAGES
from repro.analysis.report import render_accuracy_figure


def test_fig7_global_accuracy(benchmark, full_runner):
    figure = run_once(benchmark, lambda: build_fig7(full_runner))
    print()
    print(render_accuracy_figure(
        figure, "Figure 7: Global shutdown predictor (measured)"
    ))
    for name, paper in PAPER_FIG7_AVERAGES.items():
        avg = average_bars(figure, name)
        print(f"  paper     {name:7s} hit={paper.hit:6.1%} "
              f"miss={paper.miss:6.1%}   (measured hit={avg.hit:6.1%} "
              f"miss={avg.miss:6.1%})")
    checks = fig7_checks(figure)
    print(render_checks(checks))
    assert all(check.passed for check in checks), render_checks(checks)

    # Headline claim: PCAP's global coverage lands in the mid-80s with
    # roughly 10% mispredictions (paper: 86% / 10%).
    pcap = average_bars(figure, "PCAP")
    assert 0.75 <= pcap.hit <= 0.95
    assert pcap.miss <= 0.20
