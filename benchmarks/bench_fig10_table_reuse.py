"""Figure 10 — Predictor table reuse.

PCAP vs PCAPa and LT vs LTa (the 'a' variants discard their tables at
application exit), with hits and misses split by primary vs backup
predictor — the paper's case that cross-execution reuse is what makes
sophisticated predictors worthwhile.
"""

from conftest import run_once

from repro.analysis.compare import fig10_checks, render_checks
from repro.analysis.figures import average_bars, build_fig10
from repro.analysis.paper_data import PAPER_FIG10_SPLIT
from repro.analysis.report import render_accuracy_figure


def test_fig10_table_reuse(benchmark, full_runner):
    figure = run_once(benchmark, lambda: build_fig10(full_runner))
    print()
    print(render_accuracy_figure(
        figure, "Figure 10: Predictor table reuse (measured)",
        split_sources=True,
    ))
    for name, (primary, backup) in PAPER_FIG10_SPLIT.items():
        avg = average_bars(figure, name)
        print(f"  paper     {name:7s} hitP={primary:6.1%} "
              f"hitB={backup:6.1%}   (measured hitP={avg.hit_primary:6.1%} "
              f"hitB={avg.hit_backup:6.1%})")
    checks = fig10_checks(figure)
    print(render_checks(checks))
    assert all(check.passed for check in checks), render_checks(checks)

    # Paper's headline: reuse multiplies the primary predictor's share of
    # correct predictions severalfold (paper: fourfold).
    pcap = average_bars(figure, "PCAP")
    pcap_a = average_bars(figure, "PCAPa")
    assert pcap.hit_primary >= 1.8 * max(pcap_a.hit_primary, 1e-9)
