"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at full
scale (the complete six-application trace history) and prints the same
rows/series the paper reports, side by side with the paper's numbers.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the output.

Ablation benches use a reduced scale (0.5) so parameter sweeps stay
affordable; the headline table/figure benches run at scale 1.0.  Both
scales can be overridden from the environment (``REPRO_BENCH_SCALE``,
``REPRO_ABLATION_SCALE``) — the CI smoke job runs one figure bench at a
reduced scale to catch API drift quickly.

Suite-level runs fan out across worker processes by default: the
``jobs`` fixture reads ``REPRO_JOBS`` (0 = all cores) and falls back to
the machine's core count, and both runner fixtures are
:class:`~repro.sim.parallel.ParallelExperimentRunner` instances, so the
figure/table benches and the ablation sweeps all use the parallel
execution layer.  Results are bit-identical to serial runs (the layer
merges per-cell results in a fixed order).
"""

from __future__ import annotations

import os

import pytest

from repro.config import JOBS_ENV_VAR, SimulationConfig
from repro.sim.parallel import ParallelExperimentRunner, resolve_jobs
from repro.workloads import build_suite


def _env_scale(name: str, fallback: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return fallback


#: Scale of the headline table/figure benches.
FULL_SCALE = _env_scale("REPRO_BENCH_SCALE", 1.0)
#: Scale of the ablation sweeps.
ABLATION_SCALE = _env_scale("REPRO_ABLATION_SCALE", 0.5)

#: Worker count of the parallel execution layer: ``REPRO_JOBS`` when
#: set, otherwise one worker per core.
JOBS = resolve_jobs(None if os.environ.get(JOBS_ENV_VAR) else 0)


@pytest.fixture(scope="session")
def jobs() -> int:
    return JOBS


@pytest.fixture(scope="session")
def config() -> SimulationConfig:
    return SimulationConfig()


@pytest.fixture(scope="session")
def full_runner(config) -> ParallelExperimentRunner:
    """Full-scale suite + runner shared by the table/figure benches.

    The runner memoizes the cache-filtering pass; predictor state is per
    spec, so benches do not interfere with one another.
    """
    return ParallelExperimentRunner(
        build_suite(scale=FULL_SCALE), config, jobs=JOBS
    )


@pytest.fixture(scope="session")
def ablation_runner(config) -> ParallelExperimentRunner:
    return ParallelExperimentRunner(
        build_suite(scale=ABLATION_SCALE), config, jobs=JOBS
    )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Whole-suite simulations take seconds; statistical repetition would
    multiply runtimes for no insight, so every bench uses a single
    measured round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
