"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at full
scale (the complete six-application trace history) and prints the same
rows/series the paper reports, side by side with the paper's numbers.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the output.

Ablation benches use a reduced scale (0.5) so parameter sweeps stay
affordable; the headline table/figure benches run at scale 1.0.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.sim.experiment import ExperimentRunner
from repro.workloads import build_suite

#: Scale of the headline table/figure benches.
FULL_SCALE = 1.0
#: Scale of the ablation sweeps.
ABLATION_SCALE = 0.5


@pytest.fixture(scope="session")
def config() -> SimulationConfig:
    return SimulationConfig()


@pytest.fixture(scope="session")
def full_runner(config) -> ExperimentRunner:
    """Full-scale suite + runner shared by the table/figure benches.

    The runner memoizes the cache-filtering pass; predictor state is per
    spec, so benches do not interfere with one another.
    """
    return ExperimentRunner(build_suite(scale=FULL_SCALE), config)


@pytest.fixture(scope="session")
def ablation_runner(config) -> ExperimentRunner:
    return ExperimentRunner(build_suite(scale=ABLATION_SCALE), config)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Whole-suite simulations take seconds; statistical repetition would
    multiply runtimes for no insight, so every bench uses a single
    measured round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
