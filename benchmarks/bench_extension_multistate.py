"""Extension — multiple low-power states (§7).

"PCAP can be further extended to handle multiple low power states of
hard disks.  For example, the sliding wait-window can be optimized to
put the disk into a lower power state immediately, and only shut down
after the wait-window elapses."

Compares PCAP on the plain three-state drive against PCAP with the
low-power idle state engaged whenever every process predicts shutdown.
"""

from conftest import run_once


def test_extension_multistate(benchmark, ablation_runner):
    def sweep():
        results = {}
        for app in ablation_runner.applications:
            base = ablation_runner.run_global(app, "Base").energy
            plain = ablation_runner.run_global(app, "PCAP").energy
            multi = ablation_runner.run_global(
                app, "PCAP", multistate=True
            ).energy
            results[app] = (
                1.0 - plain / base,
                1.0 - multi / base,
            )
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Extension: multi-state disk (PCAP, global, scale 0.5)")
    for app, (plain, multi) in results.items():
        print(f"  {app:9s} plain={plain:6.1%}  +low-power idle={multi:6.1%}")

    # The low-power state can only help (its residence replaces full
    # idle power during wait-window/timeout waits).
    for app, (plain, multi) in results.items():
        assert multi >= plain - 1e-9, app
    # And it helps somewhere (the waits are real).
    assert any(multi > plain + 0.001 for plain, multi in results.values())
