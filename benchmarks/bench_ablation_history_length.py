"""Ablation — PCAPh history length (§6.4.1).

The paper uses six history bits and reports that longer histories do not
reduce mispredictions further while extending training.  Sweeps the
length and shows the miss plateau plus the coverage cost of very long
histories.

Runs through the parallel sweep layer (one cell per length × app).
"""

from conftest import run_once

from repro.core.variants import pcap_h
from repro.predictors.registry import pcap_spec
from repro.sim.sweep import sweep

LENGTHS = (1, 2, 4, 6, 8, 10)


def test_ablation_history_length(benchmark, ablation_runner, jobs):
    def run():
        points = sweep(
            ablation_runner,
            LENGTHS,
            make_spec=lambda length, cfg: pcap_spec(
                cfg, pcap_h(history_length=length)
            ),
            jobs=jobs,
        )
        return {point.value: point for point in points}

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: PCAPh history length (global, scale 0.5, jobs={jobs})")
    for length, point in results.items():
        print(f"  h={length:2d}  hit={point.hit_fraction:6.1%}  "
              f"miss={point.miss_fraction:6.1%}")

    # Paper: history 6 beats no/short history on misses; going past 6
    # does not reduce misses meaningfully further.
    assert results[6].miss_fraction <= results[1].miss_fraction + 0.01
    assert abs(results[10].miss_fraction - results[6].miss_fraction) < 0.05
