"""Ablation — PCAPh history length (§6.4.1).

The paper uses six history bits and reports that longer histories do not
reduce mispredictions further while extending training.  Sweeps the
length and shows the miss plateau plus the coverage cost of very long
histories.
"""

from conftest import run_once

from repro.analysis.figures import average_bars, build_fig9
from repro.core.variants import pcap_h
from repro.predictors.registry import pcap_spec

LENGTHS = (1, 2, 4, 6, 8, 10)


def test_ablation_history_length(benchmark, ablation_runner):
    def sweep():
        results = {}
        for length in LENGTHS:
            stats = []
            for application in ablation_runner.applications:
                spec = pcap_spec(
                    ablation_runner.config, pcap_h(history_length=length)
                )
                stats.append(
                    ablation_runner.run_global(application, spec).stats
                )
            hit = sum(s.hit_fraction for s in stats) / len(stats)
            miss = sum(s.miss_fraction for s in stats) / len(stats)
            results[length] = (hit, miss)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Ablation: PCAPh history length (global, scale 0.5)")
    for length, (hit, miss) in results.items():
        print(f"  h={length:2d}  hit={hit:6.1%}  miss={miss:6.1%}")

    # Paper: history 6 beats no/short history on misses; going past 6
    # does not reduce misses meaningfully further.
    assert results[6][1] <= results[1][1] + 0.01
    assert abs(results[10][1] - results[6][1]) < 0.05
