"""Beyond the paper's figures — user-perceived spin-up latency.

§6.3: "Unnecessary shutdowns not only consume energy but also can
affect disk reliability and irritate the user who has to wait for the
disk to spin up."  This bench quantifies that trade: spin-up delays per
predictor, split into benign ones (the user was away anyway) and
irritating ones (the off-window was below breakeven — the user was
actively working when the disk had to spin back up).
"""

from conftest import run_once

PREDICTORS = ("Ideal", "TP", "TP-BE", "LT", "PCAP", "PCAPfh")


def test_latency_impact(benchmark, ablation_runner):
    def sweep():
        results = {}
        for name in PREDICTORS:
            delayed = irritating = shutdowns = 0
            seconds = 0.0
            for app in ablation_runner.applications:
                result = ablation_runner.run_global(app, name)
                delayed += result.delayed_requests
                irritating += result.irritating_delays
                seconds += result.delay_seconds
                shutdowns += result.shutdowns
            results[name] = (delayed, irritating, seconds, shutdowns)
        return results

    results = run_once(benchmark, sweep)
    print()
    print("Spin-up latency impact (suite-wide, scale 0.5)")
    print(f"  {'predictor':9s} {'shutdowns':>9s} {'delayed':>8s} "
          f"{'irritating':>11s} {'wait (s)':>9s}")
    for name, (delayed, irritating, seconds, shutdowns) in results.items():
        print(f"  {name:9s} {shutdowns:9d} {delayed:8d} {irritating:11d} "
              f"{seconds:9.1f}")

    # The conservative 10 s timeout irritates less than the aggressive
    # breakeven timeout, and mispredictions are what irritate: the
    # history-augmented PCAPfh irritates no more than base PCAP.
    assert results["TP"][1] <= results["TP-BE"][1]
    assert results["PCAPfh"][1] <= results["PCAP"][1] + 1
    # Irritating delays track mispredicted shutdowns, never exceed total.
    for name, (delayed, irritating, _s, _sd) in results.items():
        assert irritating <= delayed
