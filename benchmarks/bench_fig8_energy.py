"""Figure 8 — Energy distribution.

Base / Ideal / TP / LT / PCAP energy per application, broken into the
paper's components (busy I/O, idle below/above breakeven, power cycle),
normalized to the Base system, plus the TP-BE (breakeven timeout)
variant discussed in §6.3's text.
"""

from conftest import run_once

from repro.analysis.compare import fig8_checks, render_checks
from repro.analysis.figures import average_savings, build_fig8
from repro.analysis.paper_data import PAPER_FIG8_SAVINGS
from repro.analysis.report import render_energy_figure

PREDICTORS = ("Base", "Ideal", "TP", "TP-BE", "LT", "PCAP")


def test_fig8_energy(benchmark, full_runner):
    figure = run_once(
        benchmark, lambda: build_fig8(full_runner, predictors=PREDICTORS)
    )
    print()
    print(render_energy_figure(figure))
    checks = fig8_checks(figure)
    print(render_checks(checks))
    assert all(check.passed for check in checks), render_checks(checks)

    # §6.3 text: the aggressive breakeven timeout saves slightly more
    # than the 10 s TP (at the cost of more mispredictions).
    tp = average_savings(figure, "TP")
    tp_be = average_savings(figure, "TP-BE")
    assert tp_be >= tp - 0.01
    for name, paper_value in PAPER_FIG8_SAVINGS.items():
        measured = average_savings(figure, name)
        print(f"  {name:6s} measured {measured:6.1%} vs paper "
              f"{paper_value:6.1%}")
