"""Table 2 — The states and state transitions of the simulated disk.

Verifies the disk model against the paper's Fujitsu MHF 2043 AT
parameters and the quoted 5.43 s breakeven time (derived, not
hard-coded, in our model).
"""

import pytest
from conftest import run_once

from repro.analysis.paper_data import PAPER_TABLE2
from repro.analysis.report import render_table2
from repro.analysis.tables import build_table2
from repro.disk.power_model import fujitsu_mhf2043at


def test_table2_disk_model(benchmark):
    rows = run_once(benchmark, lambda: build_table2(fujitsu_mhf2043at()))
    print()
    print(render_table2(rows))

    values = {row.name: row.value for row in rows}
    assert values["Busy power"] == PAPER_TABLE2["busy_power_w"]
    assert values["Idle power"] == PAPER_TABLE2["idle_power_w"]
    assert values["Standby power"] == PAPER_TABLE2["standby_power_w"]
    assert values["Spin-up energy"] == PAPER_TABLE2["spinup_energy_j"]
    assert values["Shutdown energy"] == PAPER_TABLE2["shutdown_energy_j"]
    assert values["Spin-up time"] == PAPER_TABLE2["spinup_time_s"]
    assert values["Shutdown time"] == PAPER_TABLE2["shutdown_time_s"]
    assert values["Breakeven time (derived)"] == pytest.approx(
        PAPER_TABLE2["breakeven_time_s"], abs=0.03
    )
