"""Beyond the paper's figures — the predictors' behavioural envelope.

Characterizes the policy field on the four extreme workloads: perfectly
periodic (clockwork), adversarially novel (chaos), regime-changing
(shapeshifter), and signature-aliasing (pc_alias).  Demonstrates the
paper's safety arguments *and* their limits:

* §2.1's premise pays off fully when behaviour repeats (clockwork);
* §4.3's backup timeout means PCAP degrades *to* the timeout
  predictor — never below it — when behaviour never repeats (chaos);
* §4.2's retraining handles recompiled code (shapeshifter);
* but when distinct control paths *alias* to one arithmetic-sum
  signature (pc_alias), PCAP's **primary** fires prematurely on every
  aliased gap — damage the backup-timeout argument cannot catch.  The
  learned family bounds it: the λ-hedged ski-rental consumer of the
  same table keeps its premature fires at zero, and Q-DPM learns the
  long/short alternation the signature cannot express.
"""

from conftest import run_once

from repro.sim.experiment import ExperimentRunner
from repro.workloads.extremes import build_extremes

PREDICTORS = ("TP", "LT", "PCAP", "QDPM", "SKI", "PI")


def test_predictor_envelope(benchmark, config):
    runner = ExperimentRunner(build_extremes(executions=12), config)

    def sweep():
        results = {}
        for app in runner.applications:
            for name in PREDICTORS:
                result = runner.run_global(app, name)
                results[(app, name)] = result
        return results

    results = run_once(benchmark, sweep)
    print()
    print("predictor behavioural envelope (12 executions each)")
    for (app, name), result in results.items():
        stats = result.stats
        table = result.table_size if result.table_size is not None else "-"
        print(f"  {app:13s} {name:5s} hit={stats.hit_fraction:6.1%} "
              f"(primary {stats.hit_primary_fraction:6.1%}) "
              f"miss={stats.miss_fraction:6.1%} "
              f"energy={result.energy:9.1f}J table={table}")

    # Clockwork: near-perfect primary coverage with a one-entry table.
    clockwork = results[("clockwork", "PCAP")]
    assert clockwork.stats.hit_fraction > 0.95
    assert clockwork.table_size == 1

    # Chaos: PCAP's coverage equals TP's (the backup floor), its primary
    # never fires, and its table bloats with single-use signatures.
    chaos_pcap = results[("chaos", "PCAP")]
    chaos_tp = results[("chaos", "TP")]
    assert chaos_pcap.stats.hits_primary == 0
    assert chaos_pcap.stats.hits == chaos_tp.stats.hits
    assert (chaos_pcap.table_size or 0) > 50

    # Shapeshifter: the regime switch costs one retraining transient,
    # not the predictor.
    shape = results[("shapeshifter", "PCAP")]
    assert shape.stats.hit_fraction > 0.9
    assert shape.table_size == 2

    # PC aliasing: PCAP's primary misfires on (almost) every aliased
    # short gap — a systematic premature shutdown the backup-timeout
    # safety floor cannot catch, because the primary causes it.
    alias_pcap = results[("pc_alias", "PCAP")]
    alias_tp = results[("pc_alias", "TP")]
    assert alias_pcap.stats.misses_primary > 0.8 * alias_pcap.stats.opportunities
    assert alias_tp.stats.misses == 0

    # The λ-hedged ski-rental consumer of the SAME advice table keeps
    # its premature fires at zero and still covers every opportunity —
    # consistency on the long gaps, robustness on the aliased ones.
    alias_ski = results[("pc_alias", "SKI")]
    assert alias_ski.stats.misses == 0
    assert alias_ski.stats.hit_fraction > 0.9
    assert alias_ski.energy < alias_pcap.energy
    assert alias_ski.energy < alias_tp.energy

    # Q-DPM learns the long/short alternation from idle-history state
    # (which the aliased signature cannot express): misses stay rare.
    alias_qdpm = results[("pc_alias", "QDPM")]
    assert alias_qdpm.stats.hit_fraction > 0.9
    assert alias_qdpm.stats.misses < 0.2 * alias_qdpm.stats.opportunities

    # The PI controller holds its irritation near the setpoint on every
    # workload — premature fires stay a bounded fraction of gaps.
    for app in ("clockwork", "chaos", "shapeshifter", "pc_alias"):
        pi = results[(app, "PI")]
        assert pi.stats.misses <= 0.2 * max(pi.stats.gaps, 1)

    # On chaos (nothing to predict), the learned policies never do
    # worse than the timeout floor by more than the exploration cost.
    chaos_qdpm = results[("chaos", "QDPM")]
    assert chaos_qdpm.energy < 1.05 * chaos_tp.energy
