"""Beyond the paper's figures — PCAP's behavioural envelope.

Characterizes the predictor on the three extreme workloads: perfectly
periodic (clockwork), adversarially novel (chaos), and regime-changing
(shapeshifter).  Demonstrates the paper's two safety arguments:

* §2.1's premise pays off fully when behaviour repeats (clockwork);
* §4.3's backup timeout means PCAP degrades *to* the timeout
  predictor — never below it — when behaviour never repeats (chaos);
* §4.2's retraining handles recompiled code (shapeshifter).
"""

from conftest import run_once

from repro.sim.experiment import ExperimentRunner
from repro.workloads.extremes import build_extremes

PREDICTORS = ("TP", "LT", "PCAP")


def test_predictor_envelope(benchmark, config):
    runner = ExperimentRunner(build_extremes(executions=12), config)

    def sweep():
        results = {}
        for app in runner.applications:
            for name in PREDICTORS:
                result = runner.run_global(app, name)
                results[(app, name)] = result
        return results

    results = run_once(benchmark, sweep)
    print()
    print("PCAP behavioural envelope (12 executions each)")
    for (app, name), result in results.items():
        stats = result.stats
        table = result.table_size if result.table_size is not None else "-"
        print(f"  {app:13s} {name:5s} hit={stats.hit_fraction:6.1%} "
              f"(primary {stats.hit_primary_fraction:6.1%}) "
              f"miss={stats.miss_fraction:6.1%} table={table}")

    # Clockwork: near-perfect primary coverage with a one-entry table.
    clockwork = results[("clockwork", "PCAP")]
    assert clockwork.stats.hit_fraction > 0.95
    assert clockwork.table_size == 1

    # Chaos: PCAP's coverage equals TP's (the backup floor), its primary
    # never fires, and its table bloats with single-use signatures.
    chaos_pcap = results[("chaos", "PCAP")]
    chaos_tp = results[("chaos", "TP")]
    assert chaos_pcap.stats.hits_primary == 0
    assert chaos_pcap.stats.hits == chaos_tp.stats.hits
    assert (chaos_pcap.table_size or 0) > 50

    # Shapeshifter: the regime switch costs one retraining transient,
    # not the predictor.
    shape = results[("shapeshifter", "PCAP")]
    assert shape.stats.hit_fraction > 0.9
    assert shape.table_size == 2
