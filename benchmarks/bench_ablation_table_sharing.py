"""Ablation — application-level vs per-process prediction tables (§4.2).

The paper: "While PCAP uses learning based on process ID, it associates
the prediction table with a particular application."  PCAPp gives each
process a private table instead; helper processes then retrain what
their siblings already know, shifting hits from the primary predictor
to the backup on the multi-process applications.

Each variant's suite run fans out one cell per application through the
parallel execution layer.
"""

from conftest import run_once

MULTIPROCESS = ("mozilla", "writer", "impress")


def test_ablation_table_sharing(benchmark, ablation_runner, jobs):
    def run():
        shared = ablation_runner.run_suite("PCAP", jobs=jobs)
        private = ablation_runner.run_suite("PCAPp", jobs=jobs)
        return {
            app: (
                shared[app].stats.hit_primary_fraction,
                private[app].stats.hit_primary_fraction,
                shared[app].table_size or 0,
                private[app].table_size or 0,
            )
            for app in ablation_runner.applications
        }

    results = run_once(benchmark, run)
    print()
    print(f"Ablation: table association (global, scale 0.5, jobs={jobs})")
    print(f"  {'app':9s} {'shared hitP':>11s} {'private hitP':>12s} "
          f"{'shared tbl':>10s} {'private tbl':>11s}")
    for app, (shared, private, st, pt) in results.items():
        print(f"  {app:9s} {shared:11.1%} {private:12.1%} {st:10d} {pt:11d}")

    # Private tables duplicate entries across processes...
    for app in MULTIPROCESS:
        assert results[app][3] >= results[app][2], app
    # ...and never beat sharing on primary coverage; single-process
    # nedit is indifferent.
    for app, (shared, private, *_rest) in results.items():
        assert private <= shared + 0.02, app
    assert abs(results["nedit"][0] - results["nedit"][1]) < 1e-9
    # impress runs two identical render workers (same code, same PCs):
    # the application-level table trains once for both, so the private
    # variant duplicates entries there.
    assert results["impress"][3] > results["impress"][2]
