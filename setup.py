"""Legacy setup shim: enables ``pip install -e .`` in offline
environments lacking the ``wheel`` package (metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
